//! A dependency-free operational HTTP endpoint.
//!
//! [`MetricsServer`] binds a `std::net::TcpListener` and answers:
//!
//! * `GET /metrics` — the current global registry in Prometheus text
//!   format (see [`crate::MetricsSnapshot::to_prometheus_text`]) plus a
//!   constant `qoco_build_info` gauge identifying the binary.
//! * `GET /health` — a one-object JSON liveness summary (uptime, the live
//!   session-progress gauges, profiler sample totals).
//! * `GET /alerts` — the qoco-watch rule states and recent lifecycle
//!   transitions as JSON.
//! * `GET /api/timeseries?metric=…[&window=…]` — the sampled ring of one
//!   metric plus its windowed rate and min/max/last as JSON.
//! * `GET /dashboard` — a self-contained HTML page with inline-SVG
//!   sparklines and the alert table (see [`crate::dashboard_html`]).
//!
//! Everything else gets a `404` that lists the routes that do exist. Each
//! route carries its correct `Content-Type` and every response closes the
//! connection (`Connection: close`). One accept-loop thread, one
//! connection at a time — the payload is a few KB of text for a scraper
//! that polls every few seconds, so there is nothing to pipeline.
//!
//! The server reads the *global* registry and watch directly, so it
//! reflects live values mid-session (unlike exporters that consume an
//! end-of-session snapshot). Dropping the guard shuts the listener down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::push_json_str;

/// A running metrics endpoint; see the module docs. Dropping it stops the
/// accept loop and joins the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks an ephemeral
    /// port — read it back with [`MetricsServer::local_addr`]) and start
    /// serving `GET /metrics`.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("qoco-metrics".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A misbehaving client must not wedge the endpoint.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                        let _ = serve_one(stream, started);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept() the serving thread is parked in.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A request line longer than this (with no line break in sight) is cut
/// off with `414` instead of being buffered further. Real scrapers send
/// `GET /metrics HTTP/1.1` — anything approaching this bound is garbage.
const MAX_REQUEST_LINE: usize = 1024;

/// The `GET /health` body: a single JSON object with server uptime, the
/// live session-progress gauges (0 when no session has set them), and the
/// profiler's process-lifetime sample totals.
fn health_body(started: Instant) -> String {
    let snapshot = crate::metrics().snapshot();
    let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0.0);
    let (samples, dropped) = crate::sample_totals();
    format!(
        concat!(
            "{{\"status\":\"ok\",\"uptime_s\":{:.3},\"session_active\":{},",
            "\"questions_asked\":{},\"witnesses_open\":{},",
            "\"profile\":{{\"samples\":{},\"dropped\":{}}}}}\n"
        ),
        started.elapsed().as_secs_f64(),
        crate::enabled(),
        gauge("session.questions_asked"),
        gauge("session.witnesses_open"),
        samples,
        dropped,
    )
}

/// Push `v` as a JSON number, or `null` when absent/non-finite.
fn push_json_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) if v.is_finite() => out.push_str(&format!("{v}")),
        _ => out.push_str("null"),
    }
}

/// The `GET /metrics` body: Prometheus exposition plus the constant
/// `qoco_build_info` gauge, so every scrape is attributable to a build.
fn metrics_body() -> String {
    let mut text = crate::metrics().snapshot().to_prometheus_text();
    let b = crate::build_info();
    text.push_str("# HELP qoco_build_info Build identity (always 1; labels carry the info).\n");
    text.push_str("# TYPE qoco_build_info gauge\n");
    text.push_str(&format!(
        "qoco_build_info{{version=\"{}\",git=\"{}\",host_parallelism=\"{}\"}} 1\n",
        b.version, b.git, b.host_parallelism
    ));
    text
}

/// The `GET /alerts` body: watch liveness, per-rule lifecycle state, and
/// the recent transition log.
fn alerts_body() -> String {
    let mut out = String::from("{\"watch\":");
    match crate::watch() {
        None => out.push_str("false,\"tick\":0,\"states\":[],\"transitions\":[]"),
        Some(w) => {
            out.push_str(&format!("true,\"tick\":{},\"states\":[", w.ticks()));
            for (i, s) in w.alert_states().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                push_json_str(&mut out, &s.name);
                out.push_str(",\"rule\":");
                push_json_str(&mut out, &s.rule);
                out.push_str(&format!(
                    ",\"severity\":\"{}\",\"state\":\"{}\",\"last_value\":",
                    s.severity, s.state
                ));
                push_json_f64(&mut out, s.last_value);
                out.push_str(&format!(
                    ",\"fired\":{},\"resolved\":{}}}",
                    s.fired, s.resolved
                ));
            }
            out.push_str("],\"transitions\":[");
            for (i, t) in w.recent_transitions().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"tick\":{},\"at_ns\":{},\"rule\":",
                    t.tick, t.at_ns
                ));
                push_json_str(&mut out, &t.rule);
                out.push_str(&format!(",\"to\":\"{}\",\"value\":", t.to));
                push_json_f64(&mut out, t.value);
                out.push('}');
            }
            out.push(']');
        }
    }
    out.push_str("}\n");
    out
}

/// The `GET /api/timeseries` body (status, JSON). `metric` is required;
/// `window` (rule-grammar duration, default 60s) bounds the rate and
/// min/max/last derivations.
fn timeseries_body(query: &str) -> (&'static str, String) {
    let mut metric = None;
    let mut window = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        match k {
            "metric" => metric = Some(v.to_string()),
            "window" => window = Some(v.to_string()),
            _ => {}
        }
    }
    let Some(metric) = metric.filter(|m| !m.is_empty()) else {
        return (
            "400 Bad Request",
            "{\"error\":\"missing `metric` query parameter\"}\n".to_string(),
        );
    };
    let window_ns = match window.as_deref().map(crate::alerts::parse_duration) {
        None => 60 * crate::LOGICAL_TICK_NS,
        Some(Ok(ns)) if ns > 0 => ns,
        Some(other) => {
            let mut out = String::from("{\"error\":");
            let msg = match other {
                Ok(_) => "window must be positive".to_string(),
                Err(e) => e,
            };
            push_json_str(&mut out, &msg);
            out.push_str("}\n");
            return ("400 Bad Request", out);
        }
    };
    let Some(w) = crate::watch() else {
        return (
            "503 Service Unavailable",
            "{\"error\":\"no watch is running (start qoco-cli with --watch-rules)\"}\n".to_string(),
        );
    };
    let samples = w.store().samples(&metric);
    if samples.is_empty() {
        let mut out = String::from("{\"error\":\"no samples for metric\",\"metric\":");
        push_json_str(&mut out, &metric);
        out.push_str(",\"known\":[");
        for (i, name) in w.store().names().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
        }
        out.push_str("]}\n");
        return ("404 Not Found", out);
    }
    let now_ns = samples.last().map(|s| s.at_ns).unwrap_or(0);
    let mut out = String::from("{\"metric\":");
    push_json_str(&mut out, &metric);
    out.push_str(&format!(
        ",\"window_ns\":{window_ns},\"now_ns\":{now_ns},\"rate_per_s\":"
    ));
    push_json_f64(&mut out, w.store().rate(&metric, window_ns, now_ns));
    out.push_str(",\"stats\":");
    match w.store().window_stats(&metric, window_ns, now_ns) {
        None => out.push_str("null"),
        Some(st) => {
            out.push_str("{\"min\":");
            push_json_f64(&mut out, Some(st.min));
            out.push_str(",\"max\":");
            push_json_f64(&mut out, Some(st.max));
            out.push_str(",\"last\":");
            push_json_f64(&mut out, Some(st.last));
            out.push_str(&format!(",\"count\":{}}}", st.count));
        }
    }
    out.push_str(",\"samples\":[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"tick\":{},\"at_ns\":{},\"value\":",
            s.tick, s.at_ns
        ));
        push_json_f64(&mut out, Some(s.value));
        out.push('}');
    }
    out.push_str("]}\n");
    ("200 OK", out)
}

/// Handle one connection: parse the request line, answer, close.
fn serve_one(mut stream: TcpStream, started: Instant) -> std::io::Result<()> {
    // Read until the end of the request head (or 4 KB, whichever first);
    // only the request line matters, so stop early if a client streams
    // that much without ever finishing its first line.
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if len >= MAX_REQUEST_LINE && !buf[..len].contains(&b'\n') {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("");
    let path = request_line.next().unwrap_or("");

    const PROM_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
    const PLAIN: &str = "text/plain; charset=utf-8";
    const JSON: &str = "application/json";
    const HTML: &str = "text/html; charset=utf-8";
    let (route, query) = path.split_once('?').unwrap_or((path, ""));
    let overlong = len >= MAX_REQUEST_LINE && !buf[..len].contains(&b'\n');
    let (status, content_type, body) = if overlong {
        (
            "414 URI Too Long",
            PLAIN,
            "request line too long\n".to_string(),
        )
    } else {
        match (method, route) {
            ("GET", "/metrics") => ("200 OK", PROM_TEXT, metrics_body()),
            ("GET", "/health") => ("200 OK", JSON, health_body(started)),
            ("GET", "/alerts") => ("200 OK", JSON, alerts_body()),
            ("GET", "/dashboard") => ("200 OK", HTML, crate::dashboard_html()),
            ("GET", "/api/timeseries") => {
                let (status, body) = timeseries_body(query);
                (status, JSON, body)
            }
            ("GET", _) => (
                "404 Not Found",
                PLAIN,
                format!(
                    "no such route: {path}\nroutes: GET /metrics, GET /health, \
                     GET /alerts, GET /dashboard, \
                     GET /api/timeseries?metric=<name>[&window=<dur>]\n"
                ),
            ),
            _ => ("405 Method Not Allowed", PLAIN, "GET only\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryCollector;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: qoco\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn scrapes_live_global_metrics() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        crate::counter_add("server.test_counter", 7);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("qoco_server_test_counter_total 7\n"));
        // live, not end-of-session: bump again and re-scrape
        crate::counter_add("server.test_counter", 3);
        let response = http_get(server.local_addr(), "/metrics");
        assert!(response.contains("qoco_server_test_counter_total 10\n"));
        drop(server);
        drop(session);
    }

    #[test]
    fn unknown_paths_get_404_naming_the_real_routes() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/other");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        assert!(
            response.contains("routes: GET /metrics, GET /health"),
            "404 must enumerate the routes that exist: {response}"
        );
        assert!(response.contains("no such route: /other"), "{response}");
    }

    #[test]
    fn health_reports_uptime_session_gauges_and_sample_totals() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        crate::gauge_add("session.questions_asked", 5.0);
        crate::gauge_set("session.witnesses_open", 2.0);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/health");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: application/json"));
        assert!(response.contains("\"status\":\"ok\""));
        assert!(response.contains("\"session_active\":true"));
        assert!(response.contains("\"questions_asked\":5"));
        assert!(response.contains("\"witnesses_open\":2"));
        assert!(response.contains("\"uptime_s\":"));
        assert!(response.contains("\"profile\":{\"samples\":"));
        drop(server);
        drop(session);
    }

    #[test]
    fn every_route_carries_its_content_type_and_connection_close() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        for (path, content_type) in [
            (
                "/metrics",
                "Content-Type: text/plain; version=0.0.4; charset=utf-8",
            ),
            ("/health", "Content-Type: application/json"),
            ("/alerts", "Content-Type: application/json"),
            ("/api/timeseries?metric=x", "Content-Type: application/json"),
            ("/dashboard", "Content-Type: text/html; charset=utf-8"),
            ("/nope", "Content-Type: text/plain; charset=utf-8"),
        ] {
            let response = http_get(addr, path);
            assert!(response.contains(content_type), "{path}: {response}");
            assert!(response.contains("Connection: close"), "{path}: {response}");
        }
    }

    #[test]
    fn metrics_exposition_includes_build_info() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/metrics");
        assert!(
            response.contains("# TYPE qoco_build_info gauge"),
            "{response}"
        );
        let b = crate::build_info();
        assert!(
            response.contains(&format!(
                "qoco_build_info{{version=\"{}\",git=\"{}\",host_parallelism=\"{}\"}} 1",
                b.version, b.git, b.host_parallelism
            )),
            "{response}"
        );
    }

    #[test]
    fn watch_routes_serve_alerts_timeseries_and_dashboard() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        // without a watch: /alerts degrades gracefully, /api/timeseries 503s
        let response = http_get(addr, "/alerts");
        assert!(response.contains("\"watch\":false"), "{response}");
        let response = http_get(addr, "/api/timeseries?metric=crowd.faults");
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        // missing metric param is the caller's error, watch or not
        let response = http_get(addr, "/api/timeseries");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        let rules = crate::parse_rules("rule faults: rate(crowd.faults, 5s) > 1/s => warn")
            .expect("valid rule");
        let guard = crate::start_watch(rules, crate::WatchTick::Logical);
        for _ in 0..3 {
            crate::counter_add("crowd.faults", 4);
            crate::watch_tick();
        }
        let response = http_get(addr, "/alerts");
        assert!(response.contains("\"watch\":true"), "{response}");
        assert!(response.contains("\"name\":\"faults\""), "{response}");
        assert!(response.contains("\"state\":\"firing\""), "{response}");
        let response = http_get(addr, "/api/timeseries?metric=crowd.faults&window=5s");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(
            response.contains("\"metric\":\"crowd.faults\""),
            "{response}"
        );
        assert!(response.contains("\"samples\":[{\"tick\":1"), "{response}");
        assert!(response.contains("\"rate_per_s\":"), "{response}");
        let response = http_get(addr, "/api/timeseries?metric=unknown.metric");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        assert!(response.contains("\"known\":["), "{response}");
        let response = http_get(addr, "/api/timeseries?metric=crowd.faults&window=bogus");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        let response = http_get(addr, "/dashboard");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(
            response.contains("<svg"),
            "live dashboard draws sparklines: {response}"
        );
        drop(guard);
        drop(server);
        drop(session);
    }

    #[test]
    fn slow_or_malformed_clients_cannot_wedge_the_endpoint() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        // a client streaming an endless request line is cut off with 414
        // instead of being buffered until the head limit
        let mut hostile = TcpStream::connect(addr).unwrap();
        hostile
            .write_all(&vec![b'A'; 2 * MAX_REQUEST_LINE])
            .unwrap();
        let mut response = String::new();
        let _ = hostile.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 414"), "{response}");
        // a client that connects and then goes silent mid-head is dropped
        // by the read timeout rather than parking the accept loop forever…
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /metr").unwrap();
        // …so a well-formed scrape queued behind it is still served
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        drop(stalled);
    }

    #[test]
    fn shutdown_is_clean_and_port_is_released() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        drop(server);
        // the listener is gone: either refused outright or accepted by the
        // OS backlog and immediately closed without a response
        let mut ok = false;
        for _ in 0..10 {
            match TcpStream::connect(addr) {
                Err(_) => {
                    ok = true;
                    break;
                }
                Ok(mut stream) => {
                    let _ = write!(stream, "GET /metrics HTTP/1.1\r\n\r\n");
                    let mut out = String::new();
                    if stream.read_to_string(&mut out).is_err() || out.is_empty() {
                        ok = true;
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(ok, "listener still serving after drop");
    }
}
