//! A dependency-free `/metrics` + `/health` HTTP endpoint.
//!
//! [`MetricsServer`] binds a `std::net::TcpListener`, answers
//! `GET /metrics` with the current global registry rendered in the
//! Prometheus text format (see [`crate::MetricsSnapshot::to_prometheus_text`]),
//! `GET /health` with a one-object JSON liveness summary (uptime, the live
//! session-progress gauges, profiler sample totals), and everything else
//! with a `404` that lists the routes that do exist. One accept-loop
//! thread, one connection at a time — the payload is a few KB of text for
//! a scraper that polls every few seconds, so there is nothing to
//! pipeline.
//!
//! The server reads the *global* registry directly, so it reflects live
//! values mid-session (unlike exporters that consume an end-of-session
//! snapshot). Dropping the guard shuts the listener down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running metrics endpoint; see the module docs. Dropping it stops the
/// accept loop and joins the serving thread.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks an ephemeral
    /// port — read it back with [`MetricsServer::local_addr`]) and start
    /// serving `GET /metrics`.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("qoco-metrics".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A misbehaving client must not wedge the endpoint.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                        let _ = serve_one(stream, started);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept() the serving thread is parked in.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A request line longer than this (with no line break in sight) is cut
/// off with `414` instead of being buffered further. Real scrapers send
/// `GET /metrics HTTP/1.1` — anything approaching this bound is garbage.
const MAX_REQUEST_LINE: usize = 1024;

/// The `GET /health` body: a single JSON object with server uptime, the
/// live session-progress gauges (0 when no session has set them), and the
/// profiler's process-lifetime sample totals.
fn health_body(started: Instant) -> String {
    let snapshot = crate::metrics().snapshot();
    let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0.0);
    let (samples, dropped) = crate::sample_totals();
    format!(
        concat!(
            "{{\"status\":\"ok\",\"uptime_s\":{:.3},\"session_active\":{},",
            "\"questions_asked\":{},\"witnesses_open\":{},",
            "\"profile\":{{\"samples\":{},\"dropped\":{}}}}}\n"
        ),
        started.elapsed().as_secs_f64(),
        crate::enabled(),
        gauge("session.questions_asked"),
        gauge("session.witnesses_open"),
        samples,
        dropped,
    )
}

/// Handle one connection: parse the request line, answer, close.
fn serve_one(mut stream: TcpStream, started: Instant) -> std::io::Result<()> {
    // Read until the end of the request head (or 4 KB, whichever first);
    // only the request line matters, so stop early if a client streams
    // that much without ever finishing its first line.
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if len >= MAX_REQUEST_LINE && !buf[..len].contains(&b'\n') {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut request_line = head.lines().next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("");
    let path = request_line.next().unwrap_or("");

    const PROM_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";
    let overlong = len >= MAX_REQUEST_LINE && !buf[..len].contains(&b'\n');
    let (status, content_type, body) = if overlong {
        (
            "414 URI Too Long",
            PROM_TEXT,
            "request line too long\n".to_string(),
        )
    } else {
        match (method, path) {
            ("GET", "/metrics") => (
                "200 OK",
                PROM_TEXT,
                crate::metrics().snapshot().to_prometheus_text(),
            ),
            ("GET", "/health") => ("200 OK", "application/json", health_body(started)),
            ("GET", _) => (
                "404 Not Found",
                PROM_TEXT,
                format!("no such route: {path}\nroutes: GET /metrics, GET /health\n"),
            ),
            _ => (
                "405 Method Not Allowed",
                PROM_TEXT,
                "GET only\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryCollector;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: qoco\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn scrapes_live_global_metrics() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        crate::counter_add("server.test_counter", 7);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("qoco_server_test_counter_total 7\n"));
        // live, not end-of-session: bump again and re-scrape
        crate::counter_add("server.test_counter", 3);
        let response = http_get(server.local_addr(), "/metrics");
        assert!(response.contains("qoco_server_test_counter_total 10\n"));
        drop(server);
        drop(session);
    }

    #[test]
    fn unknown_paths_get_404_naming_the_real_routes() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/other");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
        assert!(
            response.contains("routes: GET /metrics, GET /health"),
            "404 must enumerate the routes that exist: {response}"
        );
        assert!(response.contains("no such route: /other"), "{response}");
    }

    #[test]
    fn health_reports_uptime_session_gauges_and_sample_totals() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        crate::gauge_add("session.questions_asked", 5.0);
        crate::gauge_set("session.witnesses_open", 2.0);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let response = http_get(server.local_addr(), "/health");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: application/json"));
        assert!(response.contains("\"status\":\"ok\""));
        assert!(response.contains("\"session_active\":true"));
        assert!(response.contains("\"questions_asked\":5"));
        assert!(response.contains("\"witnesses_open\":2"));
        assert!(response.contains("\"uptime_s\":"));
        assert!(response.contains("\"profile\":{\"samples\":"));
        drop(server);
        drop(session);
    }

    #[test]
    fn slow_or_malformed_clients_cannot_wedge_the_endpoint() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        // a client streaming an endless request line is cut off with 414
        // instead of being buffered until the head limit
        let mut hostile = TcpStream::connect(addr).unwrap();
        hostile
            .write_all(&vec![b'A'; 2 * MAX_REQUEST_LINE])
            .unwrap();
        let mut response = String::new();
        let _ = hostile.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 414"), "{response}");
        // a client that connects and then goes silent mid-head is dropped
        // by the read timeout rather than parking the accept loop forever…
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /metr").unwrap();
        // …so a well-formed scrape queued behind it is still served
        let response = http_get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        drop(stalled);
    }

    #[test]
    fn shutdown_is_clean_and_port_is_released() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr();
        drop(server);
        // the listener is gone: either refused outright or accepted by the
        // OS backlog and immediately closed without a response
        let mut ok = false;
        for _ in 0..10 {
            match TcpStream::connect(addr) {
                Err(_) => {
                    ok = true;
                    break;
                }
                Ok(mut stream) => {
                    let _ = write!(stream, "GET /metrics HTTP/1.1\r\n\r\n");
                    let mut out = String::new();
                    if stream.read_to_string(&mut out).is_err() || out.is_empty() {
                        ok = true;
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(ok, "listener still serving after drop");
    }
}
