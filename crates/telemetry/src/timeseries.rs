//! qoco-watch time-series core: fixed-capacity ring buffers sampled from
//! the global [`MetricsRegistry`](crate::MetricsRegistry) on a tick.
//!
//! A [`SeriesStore`] keeps one bounded ring of `(tick, at_ns, value)`
//! samples per metric. Each tick snapshots every registered counter and
//! gauge under its own name and every histogram as derived `<name>.p50` /
//! `<name>.p95` series (approximate quantiles read off the fixed decade
//! buckets). Windowed derivations are computed on demand: rate-over-window
//! for counters (reset-safe — a per-session epoch restart contributes no
//! negative spike), min/max/last for gauges.
//!
//! Two tick modes, both driven through one global [`Watch`]:
//!
//! * **wall-clock** — a `qoco-watch` sampler thread (same
//!   stop-flag/join pattern as the `qoco-profiler` thread) ticks every
//!   `interval`; right for live dashboards.
//! * **logical** — [`watch_tick`] fires at every crowd-answer boundary
//!   (hooked in `qoco-crowd`), one tick = one nominal second. Counter
//!   values at answer boundaries are bit-identical across fresh and
//!   journal-resumed sessions, so rule evaluation — and the exported
//!   series — replay deterministically; this is the mode CI gates on.
//!
//! Every tick also runs the [`AlertEngine`]: lifecycle edges become
//! telemetry events (hence JSONL lines and Chrome-trace instants), the
//! `alerts.evaluations` / `alerts.fired` counters tick, and the
//! `alerts.firing` gauge tracks the live count. Disabled cost: starting a
//! watch without a telemetry session is inert, and [`watch_tick`] is one
//! relaxed atomic load.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::alerts::{AlertEngine, AlertStateView, Rule, Transition};
use crate::json::push_json_str;
use crate::metrics::{HistogramSummary, MetricsSnapshot, BUCKET_BOUNDS};

fn unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Default per-series ring capacity (samples retained per metric).
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// Nominal duration of one logical tick: rule windows written in seconds
/// line up 1:1 with crowd-answer boundaries.
pub const LOGICAL_TICK_NS: u64 = 1_000_000_000;

/// One observation of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Monotonic tick index (1-based).
    pub tick: u64,
    /// Series timestamp: session-relative wall clock, or
    /// `tick × LOGICAL_TICK_NS` in logical mode.
    pub at_ns: u64,
    /// The sampled value.
    pub value: f64,
}

#[derive(Debug)]
struct RingSeries {
    cap: usize,
    data: VecDeque<Sample>,
    /// Whether any sample has been evicted: once history is lost the
    /// series' first retained sample is no longer its birth.
    evicted: bool,
}

impl RingSeries {
    fn push(&mut self, s: Sample) {
        if self.data.len() == self.cap {
            self.data.pop_front();
            self.evicted = true;
        }
        self.data.push_back(s);
    }
}

/// Windowed min/max/last over one series; see [`SeriesStore::window_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Smallest in-window value.
    pub min: f64,
    /// Largest in-window value.
    pub max: f64,
    /// Most recent in-window value.
    pub last: f64,
    /// In-window sample count.
    pub count: usize,
}

/// Bounded per-metric sample rings with windowed derivations.
pub struct SeriesStore {
    cap: usize,
    /// Smallest tick ever recorded: a series whose first sample is *later*
    /// than this was born while the store was already observing, so its
    /// first value is a genuine increase from zero (see [`Self::rate`]).
    first_tick: AtomicU64,
    series: Mutex<BTreeMap<String, RingSeries>>,
}

impl SeriesStore {
    /// An empty store whose rings hold at most `capacity` samples each.
    pub fn new(capacity: usize) -> SeriesStore {
        SeriesStore {
            cap: capacity.max(2),
            first_tick: AtomicU64::new(u64::MAX),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Append one sample to `metric`'s ring (evicting the oldest at
    /// capacity). Also the loader for `qoco-bench watch-replay`.
    pub fn record(&self, metric: &str, tick: u64, at_ns: u64, value: f64) {
        self.first_tick.fetch_min(tick, Ordering::Relaxed);
        let mut series = unpoisoned(&self.series);
        let ring = series
            .entry(metric.to_string())
            .or_insert_with(|| RingSeries {
                cap: self.cap,
                data: VecDeque::with_capacity(self.cap.min(64)),
                evicted: false,
            });
        ring.push(Sample { tick, at_ns, value });
    }

    /// Sample every metric in `snap`: counters and gauges under their own
    /// names, histograms as derived `<name>.p50` / `<name>.p95` series.
    pub fn observe(&self, tick: u64, at_ns: u64, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.record(name, tick, at_ns, *v as f64);
        }
        for (name, v) in &snap.gauges {
            self.record(name, tick, at_ns, *v);
        }
        for (name, h) in &snap.histograms {
            self.record(
                &format!("{name}.p50"),
                tick,
                at_ns,
                histogram_quantile(h, 0.50),
            );
            self.record(
                &format!("{name}.p95"),
                tick,
                at_ns,
                histogram_quantile(h, 0.95),
            );
        }
    }

    /// Every series name currently held (sorted).
    pub fn names(&self) -> Vec<String> {
        unpoisoned(&self.series).keys().cloned().collect()
    }

    /// All retained samples of `metric` (oldest first), empty if unknown.
    pub fn samples(&self, metric: &str) -> Vec<Sample> {
        unpoisoned(&self.series)
            .get(metric)
            .map(|r| r.data.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The most recent sample of `metric`.
    pub fn last(&self, metric: &str) -> Option<Sample> {
        unpoisoned(&self.series).get(metric)?.data.back().copied()
    }

    /// Counter increase per second over the trailing window ending at
    /// `now_ns`: the sum of *positive* sample-to-sample deltas inside the
    /// window divided by the window length. Negative deltas — a counter
    /// reset when a second session restarts the per-session epoch — are
    /// ignored rather than producing a huge negative spike. The sample
    /// just before the window is used as the baseline so increments
    /// entering the window are counted. A counter *born* while the store
    /// was already observing (its first retained sample is untruncated and
    /// later than the store's first tick — `crowd.faults` on the first
    /// injected fault, say) counts its first value as an increase from
    /// zero; series present from the store's first tick keep their first
    /// sample as the baseline, so attaching a watch to a long-running
    /// session never manufactures a spike. `None` until the series has an
    /// in-window sample.
    pub fn rate(&self, metric: &str, window_ns: u64, now_ns: u64) -> Option<f64> {
        if window_ns == 0 {
            return None;
        }
        let series = unpoisoned(&self.series);
        let ring = series.get(metric)?;
        let cut = now_ns.saturating_sub(window_ns);
        let born_watched = !ring.evicted
            && ring
                .data
                .front()
                .is_some_and(|s| s.tick > self.first_tick.load(Ordering::Relaxed));
        let mut prev: Option<f64> = born_watched.then_some(0.0);
        let mut gained = 0.0;
        let mut in_window = false;
        for s in &ring.data {
            if s.at_ns < cut {
                prev = Some(s.value);
                continue;
            }
            in_window = true;
            if let Some(p) = prev {
                let delta = s.value - p;
                if delta > 0.0 {
                    gained += delta;
                }
            }
            prev = Some(s.value);
        }
        in_window.then(|| gained / (window_ns as f64 / 1e9))
    }

    /// Min/max/last over the trailing window ending at `now_ns`.
    pub fn window_stats(&self, metric: &str, window_ns: u64, now_ns: u64) -> Option<WindowStats> {
        let series = unpoisoned(&self.series);
        let ring = series.get(metric)?;
        let cut = now_ns.saturating_sub(window_ns);
        let mut stats: Option<WindowStats> = None;
        for s in ring.data.iter().filter(|s| s.at_ns >= cut) {
            let st = stats.get_or_insert(WindowStats {
                min: s.value,
                max: s.value,
                last: s.value,
                count: 0,
            });
            st.min = st.min.min(s.value);
            st.max = st.max.max(s.value);
            st.last = s.value;
            st.count += 1;
        }
        stats
    }

    /// Every retained sample as `{"type":"sample",…}` JSONL lines, sorted
    /// by (tick, metric) — the format `qoco-bench watch-replay` consumes.
    pub fn to_jsonl_lines(&self) -> Vec<String> {
        let series = unpoisoned(&self.series);
        let mut rows: Vec<(u64, &str, Sample)> = Vec::new();
        for (name, ring) in series.iter() {
            for s in &ring.data {
                rows.push((s.tick, name.as_str(), *s));
            }
        }
        rows.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        rows.iter()
            .map(|(_, name, s)| {
                let mut l = String::from("{\"type\":\"sample\",\"metric\":");
                push_json_str(&mut l, name);
                l.push_str(&format!(
                    ",\"tick\":{},\"at_ns\":{},\"value\":{}}}",
                    s.tick, s.at_ns, s.value
                ));
                l
            })
            .collect()
    }
}

/// Approximate `q`-quantile (0..1) of a fixed-bucket histogram: the upper
/// bound of the bucket holding the target observation, clamped into the
/// observed `[min, max]` range (exact for the overflow tail, which reports
/// `max`). Deterministic, and tight enough for decade-bucket SLOs.
pub fn histogram_quantile(h: &HistogramSummary, q: f64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    let target = ((q.clamp(0.0, 1.0) * h.count as f64).ceil() as u64).max(1);
    let mut running = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        running += n;
        if running >= target {
            return (BUCKET_BOUNDS[i] as f64).clamp(h.min as f64, h.max as f64);
        }
    }
    h.max as f64
}

/// How a [`Watch`] advances its tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchTick {
    /// A `qoco-watch` sampler thread ticks every interval (live mode).
    Wall(Duration),
    /// [`watch_tick`] fires at every crowd-answer boundary, one tick = one
    /// nominal second (deterministic mode; what CI replays).
    Logical,
}

/// The live watch state: a [`SeriesStore`] plus an [`AlertEngine`],
/// advanced one tick at a time.
pub struct Watch {
    logical: bool,
    ticks: AtomicU64,
    store: SeriesStore,
    engine: Mutex<AlertEngine>,
}

impl Watch {
    fn new(rules: Vec<Rule>, capacity: usize, logical: bool) -> Watch {
        Watch {
            logical,
            ticks: AtomicU64::new(0),
            store: SeriesStore::new(capacity),
            engine: Mutex::new(AlertEngine::new(rules)),
        }
    }

    /// The sampled series.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Whether this watch ticks at crowd-answer boundaries.
    pub fn is_logical(&self) -> bool {
        self.logical
    }

    /// Live per-rule lifecycle state.
    pub fn alert_states(&self) -> Vec<AlertStateView> {
        unpoisoned(&self.engine).states()
    }

    /// Recent lifecycle edges (bounded, oldest first).
    pub fn recent_transitions(&self) -> Vec<Transition> {
        unpoisoned(&self.engine).recent_transitions()
    }

    /// The engine's one-line summary for final reports.
    pub fn summary_line(&self) -> String {
        unpoisoned(&self.engine).summary_line()
    }

    /// Advance one tick: snapshot the registry, append samples, evaluate
    /// every rule, and report the lifecycle edges as telemetry.
    pub fn tick_once(&self) {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let at_ns = if self.logical {
            tick * LOGICAL_TICK_NS
        } else {
            crate::now_ns()
        };
        let snap = crate::metrics().snapshot();
        self.store.observe(tick, at_ns, &snap);
        let outcome = unpoisoned(&self.engine).evaluate(tick, at_ns, &self.store);
        crate::counter_add("alerts.evaluations", outcome.rules as u64);
        crate::gauge_set("alerts.firing", outcome.firing as f64);
        for t in &outcome.transitions {
            if t.to == "firing" {
                crate::counter_add("alerts.fired", 1);
            }
            // The event flows to the installed collector: a JSONL line in
            // the --telemetry export and a "ph":"i" instant in the Chrome
            // trace, with no exporter-side special-casing.
            crate::event(t.event_name(), || t.log_line());
        }
    }
}

static WATCH_ACTIVE: AtomicBool = AtomicBool::new(false);
static WATCH: RwLock<Option<Arc<Watch>>> = RwLock::new(None);

/// The installed watch, if one is running.
pub fn watch() -> Option<Arc<Watch>> {
    if !WATCH_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    WATCH.read().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Logical tick hook, called at every crowd-answer boundary. One relaxed
/// atomic load when no watch is installed (the permanent state of
/// sessions without `--watch-rules`), and inert for wall-clock watches.
#[inline]
pub fn watch_tick() {
    if !WATCH_ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(w) = watch() {
        if w.logical {
            w.tick_once();
        }
    }
}

struct WatchInner {
    watch: Arc<Watch>,
    stop: Arc<AtomicBool>,
    sampler: Option<JoinHandle<()>>,
}

/// A running watch; see [`start_watch`]. Dropping it takes one final tick
/// (so the end-of-session values are always sampled), stops the sampler
/// thread if one was spawned, and uninstalls the global watch.
pub struct WatchGuard {
    inner: Option<WatchInner>,
}

impl WatchGuard {
    /// Whether a watch was actually installed (false when telemetry was
    /// disabled at start).
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Handle to the watch state — clone it to read the series after the
    /// guard is dropped.
    pub fn watch(&self) -> Option<Arc<Watch>> {
        self.inner.as_ref().map(|i| i.watch.clone())
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        inner.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = inner.sampler {
            let _ = handle.join();
        }
        // Final tick after the sampler is quiet: deterministic in logical
        // mode (exactly one end-of-session tick) and guarantees even a
        // session shorter than one wall interval gets sampled.
        inner.watch.tick_once();
        WATCH_ACTIVE.store(false, Ordering::Relaxed);
        let mut slot = WATCH.write().unwrap_or_else(|p| p.into_inner());
        *slot = None;
    }
}

/// Install the global watch and start ticking. Inert (returns a dead
/// guard) while telemetry is disabled — the watch samples the global
/// registry, which only records under a session. One watch at a time; a
/// second `start_watch` replaces the first (the old guard's drop is then a
/// no-op for the slot it no longer owns — avoid nesting).
pub fn start_watch(rules: Vec<Rule>, tick: WatchTick) -> WatchGuard {
    if !crate::enabled() {
        return WatchGuard { inner: None };
    }
    let logical = matches!(tick, WatchTick::Logical);
    let watch = Arc::new(Watch::new(rules, DEFAULT_SERIES_CAPACITY, logical));
    {
        let mut slot = WATCH.write().unwrap_or_else(|p| p.into_inner());
        *slot = Some(watch.clone());
    }
    WATCH_ACTIVE.store(true, Ordering::Relaxed);
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = match tick {
        WatchTick::Logical => None,
        WatchTick::Wall(interval) => {
            let interval = interval.max(Duration::from_millis(1));
            let flag = stop.clone();
            let w = watch.clone();
            std::thread::Builder::new()
                .name("qoco-watch".to_string())
                .spawn(move || {
                    let chunk = Duration::from_millis(10);
                    loop {
                        let mut slept = Duration::ZERO;
                        while slept < interval {
                            if flag.load(Ordering::Relaxed) {
                                return;
                            }
                            let nap = chunk.min(interval - slept);
                            std::thread::sleep(nap);
                            slept += nap;
                        }
                        if flag.load(Ordering::Relaxed) {
                            return;
                        }
                        w.tick_once();
                    }
                })
                .ok()
        }
    };
    WatchGuard {
        inner: Some(WatchInner {
            watch,
            stop,
            sampler,
        }),
    }
}

// ---------------------------------------------------------------------------
// Dashboard rendering (GET /dashboard)

/// A deterministic inline-SVG sparkline over `samples` (value scaled into
/// the box, tick order left to right). Returns a placeholder before two
/// samples exist.
fn sparkline(samples: &[Sample]) -> String {
    const W: f64 = 260.0;
    const H: f64 = 48.0;
    if samples.len() < 2 {
        return "<div class=\"spark empty\">waiting for samples…</div>".to_string();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in samples {
        lo = lo.min(s.value);
        hi = hi.max(s.value);
    }
    let span = if hi > lo { hi - lo } else { 1.0 };
    let step = W / (samples.len() - 1) as f64;
    let mut points = String::new();
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            points.push(' ');
        }
        let x = i as f64 * step;
        let y = H - 4.0 - (s.value - lo) / span * (H - 8.0);
        points.push_str(&format!("{x:.1},{y:.1}"));
    }
    format!(
        "<svg class=\"spark\" viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" \
         preserveAspectRatio=\"none\"><polyline fill=\"none\" stroke=\"#2f81f7\" \
         stroke-width=\"1.5\" points=\"{points}\"/></svg>"
    )
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => {
            if v == v.trunc() && v.abs() < 1e12 {
                format!("{v:.0}")
            } else {
                format!("{v:.3}")
            }
        }
        _ => "—".to_string(),
    }
}

fn panel(title: &str, samples: &[Sample], reading: &str) -> String {
    format!(
        "<div class=\"panel\"><h2>{title}</h2>{}<p class=\"reading\">{reading}</p></div>",
        sparkline(samples)
    )
}

/// Render the self-contained `/dashboard` HTML page: sparkline panels for
/// eval throughput, crowd health, view-maintenance mix and the live
/// optimality ratio, plus the alert table. Std-only string building, no
/// external assets; auto-refreshes via `<meta http-equiv="refresh">`.
pub fn dashboard_html() -> String {
    let mut body = String::new();
    let watch = watch();
    match &watch {
        None => {
            body.push_str(
                "<p class=\"sub\">no watch is running — start qoco-cli with \
                 <code>--watch-rules &lt;file&gt;</code> (and optionally \
                 <code>--watch-tick &lt;ms|logical&gt;</code>) to light this page up.</p>",
            );
        }
        Some(w) => {
            let store = w.store();
            let now_ns = store
                .last("crowd.questions_asked")
                .or_else(|| store.names().first().and_then(|n| store.last(n)))
                .map(|s| s.at_ns)
                .unwrap_or(0);
            let window = 60 * LOGICAL_TICK_NS;
            body.push_str(&format!(
                "<p class=\"sub\">tick {} · {} series · {} tick mode · session {}</p>",
                w.ticks(),
                store.names().len(),
                if w.is_logical() {
                    "logical"
                } else {
                    "wall-clock"
                },
                if crate::enabled() { "active" } else { "idle" },
            ));

            let rate_reading = |m: &str| match store.rate(m, window, now_ns) {
                Some(r) => format!(
                    "{r:.3}/s over 60s · total {}",
                    fmt_value(store.last(m).map(|s| s.value))
                ),
                None => "no data yet".to_string(),
            };
            body.push_str(&panel(
                "eval throughput (assignments tried)",
                &store.samples("eval.assignments_tried"),
                &rate_reading("eval.assignments_tried"),
            ));
            for (title, metric) in [
                ("crowd faults", "crowd.faults"),
                ("crowd retries", "crowd.retries"),
                ("crowd escalations", "crowd.escalations"),
            ] {
                body.push_str(&panel(title, &store.samples(metric), &rate_reading(metric)));
            }
            let delta = store.last("view.delta_edits").map(|s| s.value);
            let refresh = store.last("view.full_refreshes").map(|s| s.value);
            let view_ratio = match (delta, refresh) {
                (Some(d), Some(r)) if d + r > 0.0 => format!(
                    "{} delta / {} refresh · {:.1}% incremental",
                    fmt_value(delta),
                    fmt_value(refresh),
                    d / (d + r) * 100.0
                ),
                _ => "no view maintenance yet".to_string(),
            };
            body.push_str(&panel(
                "view maintenance: delta edits vs full refreshes",
                &store.samples("view.delta_edits"),
                &view_ratio,
            ));
            let questions = store.last("session.questions_asked").map(|s| s.value);
            let bound = store.last("session.lower_bound").map(|s| s.value);
            let opt_reading = match (questions, bound) {
                (Some(q), Some(b)) if b > 0.0 => format!(
                    "{} questions / lower bound {} = {:.2}× (1.0 is Theorem 4.5 optimal)",
                    fmt_value(questions),
                    fmt_value(bound),
                    q / b
                ),
                _ => "no deletion plan recorded yet".to_string(),
            };
            body.push_str(&panel(
                "optimality ratio (questions vs hitting-set lower bound)",
                &store.samples("session.questions_asked"),
                &opt_reading,
            ));

            // Per-route serve panels (PR 10), discovered from whatever
            // serve.* series the run has produced — the name vocabulary
            // is bounded by the route table, so this stays small. The
            // aggregate request counter leads; per-route counters and
            // derived p95 latencies follow in sorted (route) order.
            let serve_names = store.names();
            if serve_names.iter().any(|n| n.starts_with("serve.")) {
                body.push_str("<h2>serve</h2>");
                if store.last("serve.requests").is_some() {
                    let inflight = fmt_value(store.last("serve.inflight").map(|s| s.value));
                    let rejected = fmt_value(store.last("serve.rejected").map(|s| s.value));
                    body.push_str(&panel(
                        "requests (all routes)",
                        &store.samples("serve.requests"),
                        &format!(
                            "{} · {inflight} in flight · {rejected} rejected",
                            rate_reading("serve.requests")
                        ),
                    ));
                }
                for name in &serve_names {
                    if let Some(route) = name.strip_prefix("serve.requests.") {
                        body.push_str(&panel(
                            &format!("route {route}"),
                            &store.samples(name),
                            &rate_reading(name),
                        ));
                    } else if name.starts_with("serve.latency_ns.") && name.ends_with(".p95") {
                        let route = &name["serve.latency_ns.".len()..name.len() - ".p95".len()];
                        let reading = match store.last(name) {
                            Some(s) => format!("p95 {} ns", fmt_value(Some(s.value))),
                            None => "no data yet".to_string(),
                        };
                        body.push_str(&panel(
                            &format!("latency p95: {route}"),
                            &store.samples(name),
                            &reading,
                        ));
                    }
                }
            }

            body.push_str("<h2>alerts</h2>");
            let states = w.alert_states();
            if states.is_empty() {
                body.push_str("<p class=\"sub\">no rules loaded</p>");
            } else {
                body.push_str(
                    "<table><tr><th>rule</th><th>severity</th><th>state</th>\
                     <th>value</th><th>fired</th><th>resolved</th><th>condition</th></tr>",
                );
                for s in &states {
                    body.push_str(&format!(
                        "<tr class=\"{}\"><td>{}</td><td>{}</td><td>{}</td>\
                         <td>{}</td><td>{}</td><td>{}</td><td><code>{}</code></td></tr>",
                        s.state,
                        s.name,
                        s.severity,
                        s.state,
                        fmt_value(s.last_value),
                        s.fired,
                        s.resolved,
                        s.rule,
                    ));
                }
                body.push_str("</table>");
            }
        }
    }
    format!(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <meta http-equiv=\"refresh\" content=\"2\"><title>qoco-watch</title><style>\
         body{{font:14px/1.5 -apple-system,sans-serif;margin:2em auto;max-width:64em;\
         color:#1f2328;padding:0 1em}}h1{{font-size:1.4em}}h2{{font-size:1em;margin:.2em 0}}\
         .sub{{color:#656d76}}.panel{{display:inline-block;vertical-align:top;\
         border:1px solid #d0d7de;border-radius:6px;padding:.6em .8em;margin:.3em}}\
         .spark{{display:block}}.spark.empty{{color:#656d76;width:260px;height:48px}}\
         .reading{{margin:.3em 0 0;color:#656d76}}table{{border-collapse:collapse}}\
         td,th{{border:1px solid #d0d7de;padding:.25em .6em;text-align:left}}\
         tr.firing td{{background:#ffebe9}}tr.pending td{{background:#fff8c5}}\
         </style></head><body><h1>qoco-watch</h1>{body}</body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryCollector;

    const S: u64 = LOGICAL_TICK_NS;

    #[test]
    fn ring_buffer_wraps_at_capacity_keeping_the_newest_samples() {
        let store = SeriesStore::new(4);
        for t in 1..=10u64 {
            store.record("c", t, t * S, t as f64);
        }
        let kept = store.samples("c");
        assert_eq!(kept.len(), 4, "ring holds exactly its capacity");
        assert_eq!(
            kept.iter().map(|s| s.tick).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "oldest samples evicted first"
        );
        assert_eq!(store.last("c").expect("non-empty").value, 10.0);
        // derivations keep working over the post-wrap window
        let rate = store.rate("c", 3 * S, 10 * S).expect("in-window samples");
        assert!((rate - 1.0).abs() < 1e-9, "counter grows 1/s, got {rate}");
    }

    #[test]
    fn windowed_rate_survives_a_counter_reset_without_a_negative_spike() {
        // PR 3's per-session epoch restarts counters from zero when a
        // second session begins; the rate must not swing negative.
        let store = SeriesStore::new(64);
        let values = [100.0, 110.0, 120.0, /* reset */ 0.0, 10.0, 20.0];
        for (i, &v) in values.iter().enumerate() {
            let t = i as u64 + 1;
            store.record("c", t, t * S, v);
        }
        // window spanning the reset: gains are 10+10 (pre-reset) and 10+10
        // (post-reset); the -120 reset delta contributes nothing.
        let rate = store.rate("c", 6 * S, 6 * S).expect("samples in window");
        assert!(
            rate >= 0.0,
            "reset must not produce a negative rate: {rate}"
        );
        assert!(
            (rate - 40.0 / 6.0).abs() < 1e-9,
            "positive deltas only: got {rate}"
        );
        // min/max/last see the raw values
        let stats = store.window_stats("c", 6 * S, 6 * S).expect("stats");
        assert_eq!(stats.min, 0.0);
        assert_eq!(stats.max, 120.0);
        assert_eq!(stats.last, 20.0);
        assert_eq!(stats.count, 6);
    }

    #[test]
    fn rate_is_none_without_in_window_samples_and_zero_for_flat_counters() {
        let store = SeriesStore::new(8);
        assert_eq!(store.rate("missing", S, 10 * S), None);
        store.record("c", 1, S, 5.0);
        assert_eq!(store.rate("c", S, 100 * S), None, "sample left the window");
        store.record("c", 2, 99 * S, 5.0);
        store.record("c", 3, 100 * S, 5.0);
        assert_eq!(store.rate("c", 2 * S, 100 * S), Some(0.0), "flat counter");
    }

    #[test]
    fn a_counter_born_mid_watch_counts_its_first_value_from_zero() {
        let store = SeriesStore::new(8);
        // an always-present series pins the store's first tick at 1
        for t in 1..=4u64 {
            store.record("base", t, t * S, t as f64);
        }
        // faults counter only materialises at tick 3, already at 2
        store.record("faults", 3, 3 * S, 2.0);
        store.record("faults", 4, 4 * S, 2.0);
        let rate = store.rate("faults", 2 * S, 4 * S).expect("in-window");
        assert!(
            (rate - 1.0).abs() < 1e-9,
            "birth counts as +2 over the 2s window, got {rate}"
        );
        // a series present from the store's first tick keeps its first
        // sample as the baseline: no manufactured spike
        let base = store.rate("base", 4 * S, 4 * S).expect("in-window");
        assert!(
            (base - 0.75).abs() < 1e-9,
            "pre-existing series gains 3 over 4s, got {base}"
        );
    }

    #[test]
    fn observe_derives_histogram_quantiles_and_jsonl_round_trips() {
        let registry = crate::MetricsRegistry::new();
        registry.counter_add("c.total", 7);
        registry.gauge_set("g.open", 2.5);
        for v in [500u64, 600, 700, 9_000, 950_000] {
            registry.histogram_record("h.ns", v);
        }
        let store = SeriesStore::new(16);
        store.observe(1, S, &registry.snapshot());
        assert_eq!(store.last("c.total").unwrap().value, 7.0);
        assert_eq!(store.last("g.open").unwrap().value, 2.5);
        // p50 of [500,600,700,9000,950000]: 3rd obs is in the ≤1000 bucket
        // → bound 1000, clamped into [500, 950000]
        assert_eq!(store.last("h.ns.p50").unwrap().value, 1000.0);
        // p95 target is the 5th obs → ≤1000000 bucket bound, clamped to max
        assert_eq!(store.last("h.ns.p95").unwrap().value, 950_000.0);
        let lines = store.to_jsonl_lines();
        assert_eq!(lines.len(), 4, "counter + gauge + two quantile series");
        assert!(lines[0].starts_with("{\"type\":\"sample\",\"metric\":\"c.total\""));
        assert!(lines.iter().all(|l| l.contains("\"tick\":1")));
    }

    #[test]
    fn quantile_of_the_overflow_tail_reports_the_observed_max() {
        let registry = crate::MetricsRegistry::new();
        registry.histogram_record("h", 50);
        registry.histogram_record("h", 20_000_000_000); // beyond the ladder
        let h = registry.snapshot().histograms["h"];
        assert_eq!(histogram_quantile(&h, 0.95), 20_000_000_000.0);
        // the low quantile reads the ≤100 bucket's upper bound
        assert_eq!(histogram_quantile(&h, 0.25), 100.0);
        // a clamp engages when the bucket bound undershoots the series min
        let one = crate::MetricsRegistry::new();
        one.histogram_record("o", 750);
        let h1 = one.snapshot().histograms["o"];
        assert_eq!(histogram_quantile(&h1, 0.5), 750.0, "clamped to min");
    }

    #[test]
    fn logical_watch_ticks_sample_and_evaluate_deterministically() {
        let collector = std::sync::Arc::new(InMemoryCollector::new());
        let session = crate::session(collector.clone());
        let rules =
            crate::alerts::parse_rules("rule hot: rate(w.count, 2s) > 1/s => warn").unwrap();
        let guard = start_watch(rules, WatchTick::Logical);
        assert!(guard.is_live());
        let w = guard.watch().expect("live watch");
        for i in 0..4u64 {
            crate::counter_add("w.count", 3 * i); // accelerating counter
            watch_tick();
        }
        assert_eq!(w.ticks(), 4);
        assert_eq!(
            w.store().samples("w.count").len(),
            4,
            "one sample per logical tick"
        );
        // synthesized timestamps: tick × 1s
        assert_eq!(w.store().samples("w.count")[2].at_ns, 3 * S);
        let states = w.alert_states();
        assert_eq!(states[0].fired, 1, "accelerating counter trips the rule");
        drop(guard);
        assert!(watch().is_none(), "guard drop uninstalls the watch");
        // transitions were reported as events (JSONL / Chrome instants)
        let snap = crate::metrics().snapshot();
        drop(session);
        let names: Vec<_> = collector.events().iter().map(|e| e.name).collect();
        assert!(names.contains(&"alert.firing"), "events: {names:?}");
        assert!(snap.counter("alerts.fired") >= 1);
        assert!(snap.counter("alerts.evaluations") >= 4);
    }

    #[test]
    fn wall_clock_sampler_ticks_and_stops_cleanly() {
        let collector = std::sync::Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        crate::counter_add("wall.count", 1);
        let guard = start_watch(Vec::new(), WatchTick::Wall(Duration::from_millis(5)));
        assert!(guard.is_live());
        let w = guard.watch().expect("live watch");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while w.ticks() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(w.ticks() >= 3, "sampler thread never ticked");
        drop(guard); // joins the sampler; must not hang
        let after = w.ticks();
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(w.ticks(), after, "sampler still ticking after drop");
        assert!(w.store().samples("wall.count").len() >= 3);
        drop(session);
    }

    #[test]
    fn start_watch_is_inert_while_telemetry_is_disabled() {
        let _serial = crate::SESSION_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        assert!(!crate::enabled());
        let guard = start_watch(Vec::new(), WatchTick::Logical);
        assert!(!guard.is_live());
        assert!(guard.watch().is_none());
        assert!(watch().is_none());
        watch_tick(); // must be a no-op, not a panic
        drop(guard);
    }

    #[test]
    fn dashboard_renders_with_and_without_a_watch() {
        let _serial = crate::SESSION_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let page = dashboard_html();
        assert!(page.contains("qoco-watch"));
        assert!(
            page.contains("--watch-rules"),
            "idle page explains how to start"
        );
        let collector = std::sync::Arc::new(InMemoryCollector::new());
        let _nested = crate::nested_session(collector);
        let rules = crate::alerts::parse_rules("rule q: crowd.faults > 100 => page").unwrap();
        let guard = start_watch(rules, WatchTick::Logical);
        for i in 0..3u64 {
            crate::counter_add("eval.assignments_tried", 10 + i);
            crate::counter_add("crowd.faults", 1);
            watch_tick();
        }
        let page = dashboard_html();
        assert!(page.contains("<svg"), "live page draws sparklines: {page}");
        assert!(page.contains("eval throughput"));
        assert!(page.contains("rule q"), "alert table lists the rule");
        assert!(page.contains("idle"), "rule never breached");
        drop(guard);
    }

    #[test]
    fn dashboard_grows_route_panels_from_serve_series() {
        let _serial = crate::SESSION_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let collector = std::sync::Arc::new(InMemoryCollector::new());
        let _nested = crate::nested_session(collector);
        let guard = start_watch(Vec::new(), WatchTick::Logical);
        for i in 0..3u64 {
            crate::counter_add("serve.requests", 1);
            crate::counter_add("serve.requests.report.2xx", 1);
            crate::counter_add("serve.rejected", i & 1);
            crate::gauge_set("serve.inflight", 2.0);
            crate::histogram_record("serve.latency_ns.report", 40_000 + i * 1_000);
            watch_tick();
        }
        let page = dashboard_html();
        assert!(page.contains("<h2>serve</h2>"), "serve section: {page}");
        assert!(page.contains("requests (all routes)"));
        assert!(
            page.contains("route report.2xx"),
            "per-route sparkline panel: {page}"
        );
        assert!(
            page.contains("latency p95: report"),
            "derived p95 latency panel: {page}"
        );
        drop(guard);
    }
}
