//! # qoco-telemetry — spans, counters, and session timelines
//!
//! A dependency-free instrumentation substrate for the QOCO cleaning
//! pipeline. The paper's evaluation is entirely about *cost* (crowd
//! questions per algorithm); this crate makes the other costs visible too:
//! where wall-clock time goes (witness enumeration, hitting-set detection,
//! query splitting, delta maintenance) and how the question budget is
//! spent per phase.
//!
//! Three pieces:
//!
//! 1. **Spans** — [`span`] opens a named interval with `key=value` fields
//!    and parent linkage (per-thread stack); dropping the guard reports a
//!    [`SpanRecord`] to the installed [`Collector`]. Backends:
//!    [`InMemoryCollector`] (thread-safe, feeds timelines and tests) and
//!    [`JsonlCollector`] (streaming JSON-lines file exporter).
//! 2. **Metrics** — a global [`MetricsRegistry`] of named counters, gauges
//!    and histograms ([`counter_add`], [`gauge_set`],
//!    [`histogram_record`]), snapshotted at session end.
//! 3. **Timelines** — [`SessionTimeline`] merges spans, bridged events
//!    (e.g. crowd transcripts), and a metrics snapshot into one ordered,
//!    renderable report.
//!
//! ## Zero-cost when disabled
//!
//! No collector is installed by default. In that state [`span`] returns an
//! inert guard and every metric call returns after a single relaxed atomic
//! load — no allocation, no locking, no clock read. `cargo bench` in
//! `qoco-bench` carries a guard asserting this stays cheap.
//!
//! ## Sessions
//!
//! [`session`] installs a collector, resets the global metrics, and holds
//! a process-wide lock so concurrent tests cannot interleave their
//! telemetry; dropping the [`SessionGuard`] uninstalls the collector.
//!
//! ```
//! use std::sync::Arc;
//!
//! let collector = Arc::new(qoco_telemetry::InMemoryCollector::new());
//! let session = qoco_telemetry::session(collector.clone());
//! {
//!     let _outer = qoco_telemetry::span("clean.session").field("query", "Q1");
//!     let _inner = qoco_telemetry::span("clean.deletion_phase");
//!     qoco_telemetry::counter_add("crowd.questions_asked", 3);
//! }
//! let timeline = collector.timeline(Vec::new(), qoco_telemetry::metrics().snapshot());
//! drop(session);
//! assert_eq!(timeline.spans().len(), 2);
//! assert_eq!(timeline.metrics().counter("crowd.questions_asked"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod json;
mod metrics;
mod span;
mod timeline;

pub use collector::{Collector, InMemoryCollector, JsonlCollector};
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use span::{EventRecord, SpanGuard, SpanRecord};
pub use timeline::{fmt_ns, PhaseTotal, SessionTimeline, TimelineEvent};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use span::ActiveSpan;

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static GLOBAL_METRICS: MetricsRegistry = MetricsRegistry::new();
static SESSION_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Monotonic epoch shared by all sessions in this process; set once on the
/// first install so offsets stay comparable across a session's records.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether a collector is currently installed. One relaxed atomic load:
/// this is the disabled fast path's entire cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the telemetry epoch (0 before any install).
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    epoch().elapsed().as_nanos() as u64
}

/// Install `collector` as the process-global sink and enable telemetry.
/// Prefer [`session`], which also resets metrics and serializes sessions.
pub fn install(collector: Arc<dyn Collector>) {
    epoch(); // pin the epoch before any record is stamped
    let mut slot = COLLECTOR.write().unwrap_or_else(|p| p.into_inner());
    *slot = Some(collector);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disable telemetry and return the previously installed collector.
pub fn uninstall() -> Option<Arc<dyn Collector>> {
    ENABLED.store(false, Ordering::Relaxed);
    let mut slot = COLLECTOR.write().unwrap_or_else(|p| p.into_inner());
    slot.take()
}

fn with_collector(f: impl FnOnce(&dyn Collector)) {
    let slot = COLLECTOR.read().unwrap_or_else(|p| p.into_inner());
    if let Some(c) = slot.as_ref() {
        f(c.as_ref());
    }
}

/// Guard for one exclusive telemetry session; see [`session`].
pub struct SessionGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

/// Start an exclusive telemetry session: takes the process-wide session
/// lock (so parallel tests cannot mix their records), resets the global
/// metrics, and installs `collector`. Dropping the guard uninstalls it.
pub fn session(collector: Arc<dyn Collector>) -> SessionGuard {
    let lock = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    GLOBAL_METRICS.reset();
    install(collector);
    SessionGuard { _lock: lock }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Open a span named `name`. Returns an inert guard when telemetry is
/// disabled; otherwise the guard records a [`SpanRecord`] on drop, parented
/// to the innermost live span on this thread.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    let start = Instant::now();
    SpanGuard {
        inner: Some(ActiveSpan {
            id,
            parent,
            name,
            start,
            start_ns: start.duration_since(epoch()).as_nanos() as u64,
            fields: Vec::new(),
        }),
    }
}

pub(crate) fn finish_span(active: ActiveSpan) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|id| *id == active.id) {
            stack.remove(pos);
        }
    });
    let record = SpanRecord {
        id: active.id,
        parent: active.parent,
        name: active.name,
        start_ns: active.start_ns,
        duration_ns: active.start.elapsed().as_nanos() as u64,
        fields: active.fields,
    };
    with_collector(|c| c.record_span(&record));
}

/// Emit a point event. `detail` is only invoked when telemetry is enabled,
/// so callers may format freely inside the closure.
pub fn event(name: &'static str, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        at_ns: now_ns(),
        span: SPAN_STACK.with(|s| s.borrow().last().copied()),
        name,
        detail: detail(),
    };
    with_collector(|c| c.record_event(&record));
}

/// The global metrics registry (live values; snapshot to read them out).
pub fn metrics() -> &'static MetricsRegistry {
    &GLOBAL_METRICS
}

/// Add to a global counter; no-op while telemetry is disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        GLOBAL_METRICS.counter_add(name, delta);
    }
}

/// Set a global gauge; no-op while telemetry is disabled.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        GLOBAL_METRICS.gauge_set(name, value);
    }
}

/// Record a histogram observation; no-op while telemetry is disabled.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if enabled() {
        GLOBAL_METRICS.histogram_record(name, value);
    }
}

/// Time `f` and record its duration (ns) into histogram `name`. When
/// disabled, runs `f` with no clock reads.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    GLOBAL_METRICS.histogram_record(name, start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_paths_are_inert() {
        let _serial = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        assert!(!enabled());
        let g = span("should.not.record");
        assert!(!g.is_live());
        drop(g);
        counter_add("never", 1);
        event("never", || {
            unreachable!("detail must not run when disabled")
        });
        assert_eq!(metrics().snapshot().counter("never"), 0);
    }

    #[test]
    fn session_records_nested_spans_fields_events_and_counters() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector.clone());
        {
            let mut outer = span("clean.session").field("query", "Q1");
            {
                let _inner = span("clean.deletion_phase").field("answer", "(BRA)");
                counter_add("crowd.questions_asked", 2);
                event("crowd.verify_fact", || "Teams(BRA, EU)".to_string());
            }
            outer.record("iterations", 1);
        }
        let snapshot = metrics().snapshot();
        drop(session);

        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        // inner finishes first; parent link points at the outer span
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "clean.deletion_phase");
        assert_eq!(outer.name, "clean.session");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.field("answer"), Some("(BRA)"));
        assert_eq!(outer.field("query"), Some("Q1"));
        assert_eq!(outer.field("iterations"), Some("1"));
        assert!(outer.duration_ns >= inner.duration_ns);

        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span, Some(inner.id));

        assert_eq!(snapshot.counter("crowd.questions_asked"), 2);
        // the session guard reset metrics on entry and uninstalled on drop
        assert!(!enabled());
    }

    #[test]
    fn timeline_assembles_from_collector_and_metrics() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector.clone());
        {
            let _s = span("eval.evaluate");
            counter_add("eval.assignments_tried", 7);
        }
        let timeline = collector.timeline(Vec::new(), metrics().snapshot());
        drop(session);
        assert_eq!(timeline.spans().len(), 1);
        assert_eq!(timeline.metrics().counter("eval.assignments_tried"), 7);
        assert!(timeline.render().contains("eval.evaluate"));
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector.clone());
        {
            let _root = span("root");
            span("a").finish();
            span("b").finish();
        }
        drop(session);
        let spans = collector.spans();
        assert_eq!(spans.len(), 3);
        let root_id = spans.iter().find(|s| s.name == "root").unwrap().id;
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(root_id), "span {name} parented to root");
        }
    }

    #[test]
    fn timed_records_histogram_only_when_enabled() {
        {
            let _serial = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            assert_eq!(timed("t.ns", || 5), 5);
        }
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector);
        assert_eq!(timed("t.ns", || 6), 6);
        let snap = metrics().snapshot();
        drop(session);
        assert_eq!(snap.histograms["t.ns"].count, 1);
    }
}
