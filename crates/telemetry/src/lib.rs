//! # qoco-telemetry — spans, counters, and session timelines
//!
//! A dependency-free instrumentation substrate for the QOCO cleaning
//! pipeline. The paper's evaluation is entirely about *cost* (crowd
//! questions per algorithm); this crate makes the other costs visible too:
//! where wall-clock time goes (witness enumeration, hitting-set detection,
//! query splitting, delta maintenance) and how the question budget is
//! spent per phase.
//!
//! Three pieces:
//!
//! 1. **Spans** — [`span`] opens a named interval with `key=value` fields
//!    and parent linkage (per-thread stack); dropping the guard reports a
//!    [`SpanRecord`] to the installed [`Collector`]. Backends:
//!    [`InMemoryCollector`] (thread-safe, feeds timelines and tests) and
//!    [`JsonlCollector`] (streaming JSON-lines file exporter).
//! 2. **Metrics** — a global [`MetricsRegistry`] of named counters, gauges
//!    and histograms ([`counter_add`], [`gauge_set`],
//!    [`histogram_record`]), snapshotted at session end.
//! 3. **Timelines** — [`SessionTimeline`] merges spans, bridged events
//!    (e.g. crowd transcripts), and a metrics snapshot into one ordered,
//!    renderable report.
//!
//! ## Zero-cost when disabled
//!
//! No collector is installed by default. In that state [`span`] returns an
//! inert guard and every metric call returns after a single relaxed atomic
//! load — no allocation, no locking, no clock read. `cargo bench` in
//! `qoco-bench` carries a guard asserting this stays cheap.
//!
//! ## Sessions
//!
//! [`session`] installs a collector, resets the global metrics, and holds
//! a process-wide lock so concurrent tests cannot interleave their
//! telemetry; dropping the [`SessionGuard`] uninstalls the collector.
//!
//! ```
//! use std::sync::Arc;
//!
//! let collector = Arc::new(qoco_telemetry::InMemoryCollector::new());
//! let session = qoco_telemetry::session(collector.clone());
//! {
//!     let _outer = qoco_telemetry::span("clean.session").field("query", "Q1");
//!     let _inner = qoco_telemetry::span("clean.deletion_phase");
//!     qoco_telemetry::counter_add("crowd.questions_asked", 3);
//! }
//! let timeline = collector.timeline(Vec::new(), qoco_telemetry::metrics().snapshot());
//! drop(session);
//! assert_eq!(timeline.spans().len(), 2);
//! assert_eq!(timeline.metrics().counter("crowd.questions_asked"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accesslog;
mod alerts;
mod chrome;
mod collector;
mod decision;
mod flame;
mod json;
mod metrics;
mod profiler;
mod prometheus;
mod request;
mod server;
mod span;
mod timeline;
mod timeseries;

pub use accesslog::{
    rotation_path, AccessLog, AccessLogEntry, DEFAULT_ACCESS_LOG_CAPACITY,
    DEFAULT_ACCESS_LOG_MAX_BYTES,
};
pub use alerts::{
    parse_rule, parse_rules, AlertEngine, AlertStateView, Cmp, EvalOutcome, Expr, Rule, Severity,
    Transition,
};
pub use chrome::{chrome_trace_json, chrome_trace_json_full};
pub use collector::{Collector, FanoutCollector, InMemoryCollector, JsonlCollector};
pub use decision::{
    begin_decision, clear_current_decision, current_decision_id, finish_decision, record_decision,
    DecisionDetail, DecisionRecord,
};
pub use flame::flamegraph_svg;
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS};
pub use profiler::{
    diff_profiles, sample_totals, FrameDelta, Profile, Profiler, DEFAULT_SAMPLE_INTERVAL,
};
pub use request::{
    begin_request, clear_current_request, current_request_id, end_request, inflight_requests,
    intern_metric_name, set_request_phase, set_request_session, InflightRequest,
};
pub use server::{HttpRequest, HttpResponse, MetricsServer, RouteHandler, ServerOptions};
pub use span::{EventRecord, SpanGuard, SpanRecord};
pub use timeline::{fmt_ns, PhaseAttribution, PhaseTotal, SessionTimeline, TimelineEvent};
pub use timeseries::{
    dashboard_html, histogram_quantile, start_watch, watch, watch_tick, Sample, SeriesStore, Watch,
    WatchGuard, WatchTick, WindowStats, DEFAULT_SERIES_CAPACITY, LOGICAL_TICK_NS,
};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use span::ActiveSpan;

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(0);
static GLOBAL_METRICS: MetricsRegistry = MetricsRegistry::new();
static SESSION_LOCK: Mutex<()> = Mutex::new(());
/// Live span stacks, updated on the enabled span path and sampled by the
/// profiler; see [`profiler::StackRegistry`].
static STACK_REGISTRY: profiler::StackRegistry = profiler::StackRegistry::new();
/// Nanoseconds between the process epoch and the most recent install;
/// subtracting it makes every record session-relative, so a second
/// `session()` in the same process starts again from (near) zero.
static SESSION_EPOCH_NS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

/// Monotonic process epoch, pinned on first use. Record timestamps subtract
/// the per-session offset ([`SESSION_EPOCH_NS`]) from time measured against
/// this instant.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Convert a process-epoch offset into a session-relative offset.
fn session_ns(since_process_epoch_ns: u64) -> u64 {
    since_process_epoch_ns.saturating_sub(SESSION_EPOCH_NS.load(Ordering::Relaxed))
}

/// A small dense ordinal identifying the current OS thread (0, 1, 2, … in
/// first-use order). Stable for the thread's lifetime; stamped on every
/// span and event so exporters can reconstruct per-thread tracks.
pub fn thread_ordinal() -> u64 {
    THREAD_ORD.with(|t| *t)
}

/// Whether a collector is currently installed. One relaxed atomic load:
/// this is the disabled fast path's entire cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the current session's epoch (0 before any install).
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    session_ns(epoch().elapsed().as_nanos() as u64)
}

/// Install `collector` as the process-global sink and enable telemetry.
/// Re-bases the session epoch so timestamps start from zero for this
/// install. Prefer [`session`], which also resets metrics and serializes
/// sessions.
pub fn install(collector: Arc<dyn Collector>) {
    let offset = epoch().elapsed().as_nanos() as u64;
    SESSION_EPOCH_NS.store(offset, Ordering::Relaxed);
    // Decision ids are session-scoped so a resumed session replaying the
    // same questions reproduces the same ids.
    decision::NEXT_DECISION_ID.store(1, Ordering::Relaxed);
    // A span guard leaked across sessions must not haunt the profiler.
    STACK_REGISTRY.clear();
    // Nor may a request leaked across sessions haunt the in-flight
    // inspector.
    request::clear_registry();
    let mut slot = COLLECTOR.write().unwrap_or_else(|p| p.into_inner());
    *slot = Some(collector);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disable telemetry and return the previously installed collector.
pub fn uninstall() -> Option<Arc<dyn Collector>> {
    ENABLED.store(false, Ordering::Relaxed);
    let mut slot = COLLECTOR.write().unwrap_or_else(|p| p.into_inner());
    slot.take()
}

pub(crate) fn stack_registry() -> &'static profiler::StackRegistry {
    &STACK_REGISTRY
}

fn with_collector(f: impl FnOnce(&dyn Collector)) {
    let slot = COLLECTOR.read().unwrap_or_else(|p| p.into_inner());
    if let Some(c) = slot.as_ref() {
        f(c.as_ref());
    }
}

/// Guard for one exclusive telemetry session; see [`session`].
pub struct SessionGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

/// Start an exclusive telemetry session: takes the process-wide session
/// lock (so parallel tests cannot mix their records), resets the global
/// metrics, and installs `collector`. Dropping the guard uninstalls it.
pub fn session(collector: Arc<dyn Collector>) -> SessionGuard {
    let lock = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    GLOBAL_METRICS.reset();
    install(collector);
    SessionGuard { _lock: lock }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Guard for a nested collector scope; see [`nested_session`].
pub struct NestedSessionGuard {
    prev: Option<Arc<dyn Collector>>,
}

/// Temporarily redirect the record stream to `collector` *inside* an
/// already-active session. [`session`] self-deadlocks when called while
/// its guard is alive on the same thread — the session lock is not
/// reentrant — so a harness that owns the outer session (e.g. `figures
/// --profile`, whose `phases` target captures its own timeline) nests
/// with this instead. Only the collector slot is swapped: the session
/// lock, epoch, metrics, and the profiler's stack registry are untouched,
/// so a running sampler keeps seeing the live span stacks. Dropping the
/// guard restores the outer collector (and the disabled state, if there
/// was no outer session).
pub fn nested_session(collector: Arc<dyn Collector>) -> NestedSessionGuard {
    let mut slot = COLLECTOR.write().unwrap_or_else(|p| p.into_inner());
    let prev = slot.replace(collector);
    ENABLED.store(true, Ordering::Relaxed);
    NestedSessionGuard { prev }
}

impl Drop for NestedSessionGuard {
    fn drop(&mut self) {
        let mut slot = COLLECTOR.write().unwrap_or_else(|p| p.into_inner());
        *slot = self.prev.take();
        ENABLED.store(slot.is_some(), Ordering::Relaxed);
    }
}

/// Open a span named `name`. Returns an inert guard when telemetry is
/// disabled; otherwise the guard records a [`SpanRecord`] on drop, parented
/// to the innermost live span on this thread.
pub fn span(name: &'static str) -> SpanGuard {
    span_child_of(name, None)
}

/// Open a span with an explicit fallback parent: if this thread has a live
/// span, that wins (same as [`span`]); otherwise the span is parented to
/// `parent`. This is how work fanned out to worker threads stays linked to
/// the span that spawned it — capture [`current_span_id`] on the
/// coordinating thread and pass it into each worker.
pub fn span_child_of(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().or(parent);
        stack.push(id);
        parent
    });
    let thread = thread_ordinal();
    STACK_REGISTRY.span_opened(id, parent, name, thread);
    let start = Instant::now();
    SpanGuard {
        inner: Some(ActiveSpan {
            id,
            parent,
            name,
            thread,
            start,
            start_ns: session_ns(start.duration_since(epoch()).as_nanos() as u64),
            fields: Vec::new(),
        }),
    }
}

/// The id of the innermost live span on this thread (`None` when telemetry
/// is disabled or no span is open). Pass it to [`span_child_of`] on a
/// worker thread to keep cross-thread spans in one tree.
pub fn current_span_id() -> Option<u64> {
    if !enabled() {
        return None;
    }
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

pub(crate) fn finish_span(active: ActiveSpan) {
    let new_leaf = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|id| *id == active.id) {
            stack.remove(pos);
        }
        stack.last().copied()
    });
    STACK_REGISTRY.span_closed(active.id, active.thread, new_leaf);
    let record = SpanRecord {
        id: active.id,
        parent: active.parent,
        name: active.name,
        thread: active.thread,
        start_ns: active.start_ns,
        duration_ns: active.start.elapsed().as_nanos() as u64,
        fields: active.fields,
    };
    with_collector(|c| c.record_span(&record));
}

/// Emit a point event. `detail` is only invoked when telemetry is enabled,
/// so callers may format freely inside the closure.
pub fn event(name: &'static str, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        at_ns: now_ns(),
        span: SPAN_STACK.with(|s| s.borrow().last().copied()),
        thread: thread_ordinal(),
        name,
        detail: detail(),
    };
    with_collector(|c| c.record_event(&record));
}

/// The global metrics registry (live values; snapshot to read them out).
pub fn metrics() -> &'static MetricsRegistry {
    &GLOBAL_METRICS
}

/// Identity of this build, attached to metrics exposition and trajectory
/// lines so dashboards and bench history are attributable to a binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// `qoco-telemetry` crate version (the workspace moves in lockstep).
    pub version: &'static str,
    /// Short git hash baked in via `QOCO_GIT_HASH` at compile time,
    /// `"unknown"` for builds outside the repo scripts.
    pub git: &'static str,
    /// `std::thread::available_parallelism()` on this host.
    pub host_parallelism: usize,
}

/// The running build's identity; see [`BuildInfo`]. Always available —
/// not gated on [`enabled`], since it never touches session state.
pub fn build_info() -> BuildInfo {
    BuildInfo {
        version: env!("CARGO_PKG_VERSION"),
        git: option_env!("QOCO_GIT_HASH").unwrap_or("unknown"),
        host_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Add to a global counter; no-op while telemetry is disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        GLOBAL_METRICS.counter_add(name, delta);
    }
}

/// Set a global gauge; no-op while telemetry is disabled.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        GLOBAL_METRICS.gauge_set(name, value);
    }
}

/// Add to a global gauge; no-op while telemetry is disabled.
#[inline]
pub fn gauge_add(name: &'static str, delta: f64) {
    if enabled() {
        GLOBAL_METRICS.gauge_add(name, delta);
    }
}

/// Record a histogram observation; no-op while telemetry is disabled.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if enabled() {
        GLOBAL_METRICS.histogram_record(name, value);
    }
}

/// Time `f` and record its duration (ns) into histogram `name`. When
/// disabled, runs `f` with no clock reads.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    GLOBAL_METRICS.histogram_record(name, start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_paths_are_inert() {
        let _serial = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        assert!(!enabled());
        let g = span("should.not.record");
        assert!(!g.is_live());
        drop(g);
        counter_add("never", 1);
        event("never", || {
            unreachable!("detail must not run when disabled")
        });
        assert_eq!(metrics().snapshot().counter("never"), 0);
    }

    #[test]
    fn session_records_nested_spans_fields_events_and_counters() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector.clone());
        {
            let mut outer = span("clean.session").field("query", "Q1");
            {
                let _inner = span("clean.deletion_phase").field("answer", "(BRA)");
                counter_add("crowd.questions_asked", 2);
                event("crowd.verify_fact", || "Teams(BRA, EU)".to_string());
            }
            outer.record("iterations", 1);
        }
        let snapshot = metrics().snapshot();
        drop(session);

        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        // inner finishes first; parent link points at the outer span
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "clean.deletion_phase");
        assert_eq!(outer.name, "clean.session");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.field("answer"), Some("(BRA)"));
        assert_eq!(outer.field("query"), Some("Q1"));
        assert_eq!(outer.field("iterations"), Some("1"));
        assert!(outer.duration_ns >= inner.duration_ns);

        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span, Some(inner.id));

        assert_eq!(snapshot.counter("crowd.questions_asked"), 2);
        // the session guard reset metrics on entry and uninstalled on drop
        assert!(!enabled());
    }

    #[test]
    fn nested_session_redirects_records_and_restores_the_outer_collector() {
        let outer = Arc::new(InMemoryCollector::new());
        let session = session(outer.clone());
        span("before.nest").finish();
        let inner = Arc::new(InMemoryCollector::new());
        {
            // `session()` here would deadlock on the non-reentrant session
            // lock — the exact figures `--profile phases` shape.
            let _nested = nested_session(inner.clone());
            assert!(enabled(), "nesting keeps telemetry enabled");
            span("inside.nest").finish();
        }
        span("after.nest").finish();
        drop(session);
        assert!(!enabled(), "outer guard drop still uninstalls");
        let outer_names: Vec<_> = outer.spans().iter().map(|s| s.name).collect();
        assert_eq!(outer_names, ["before.nest", "after.nest"]);
        let inner_names: Vec<_> = inner.spans().iter().map(|s| s.name).collect();
        assert_eq!(inner_names, ["inside.nest"]);
    }

    #[test]
    fn nested_session_without_an_outer_one_disables_on_drop() {
        let _serial = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        assert!(!enabled());
        let inner = Arc::new(InMemoryCollector::new());
        {
            let _nested = nested_session(inner.clone());
            assert!(enabled());
            span("nested.solo").finish();
        }
        assert!(!enabled(), "no outer session to restore → disabled");
        assert_eq!(inner.spans().len(), 1);
    }

    #[test]
    fn timeline_assembles_from_collector_and_metrics() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector.clone());
        {
            let _s = span("eval.evaluate");
            counter_add("eval.assignments_tried", 7);
        }
        let timeline = collector.timeline(Vec::new(), metrics().snapshot());
        drop(session);
        assert_eq!(timeline.spans().len(), 1);
        assert_eq!(timeline.metrics().counter("eval.assignments_tried"), 7);
        assert!(timeline.render().contains("eval.evaluate"));
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector.clone());
        {
            let _root = span("root");
            span("a").finish();
            span("b").finish();
        }
        drop(session);
        let spans = collector.spans();
        assert_eq!(spans.len(), 3);
        let root_id = spans.iter().find(|s| s.name == "root").unwrap().id;
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(root_id), "span {name} parented to root");
        }
    }

    #[test]
    fn second_session_restarts_the_epoch() {
        // First session: do a little work so wall time passes.
        let first = Arc::new(InMemoryCollector::new());
        {
            let _session = session(first.clone());
            span("first.work").finish();
        }
        // Dead time between the sessions: without a per-session epoch this
        // gap (plus the whole first session) would leak into the second
        // session's offsets.
        let gap = std::time::Duration::from_millis(60);
        std::thread::sleep(gap);
        let second = Arc::new(InMemoryCollector::new());
        let started = Instant::now();
        {
            let _session = session(second.clone());
            span("second.work").finish();
        }
        let session_len = started.elapsed().as_nanos() as u64;
        let spans = second.spans();
        assert_eq!(spans.len(), 1);
        // Session-relative: the span started within the second session's
        // own extent, not `gap` (or more) after it.
        assert!(
            spans[0].start_ns <= session_len,
            "second session span starts at {}ns but the session only ran {}ns — \
             the epoch leaked from the first install",
            spans[0].start_ns,
            session_len
        );
        assert!(spans[0].start_ns < gap.as_nanos() as u64);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        // Eight workers (the parallel eval path's RAYON_NUM_THREADS=8
        // shape) hammer the same counter and histogram simultaneously;
        // every increment must land.
        const WORKERS: usize = 8;
        const OPS: u64 = 10_000;
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector);
        std::thread::scope(|scope| {
            for w in 0..WORKERS as u64 {
                scope.spawn(move || {
                    for i in 0..OPS {
                        counter_add("stress.counter", 1);
                        histogram_record("stress.histo", w * OPS + i);
                    }
                });
            }
        });
        let snap = metrics().snapshot();
        drop(session);
        assert_eq!(snap.counter("stress.counter"), WORKERS as u64 * OPS);
        let h = snap.histograms["stress.histo"];
        assert_eq!(h.count, WORKERS as u64 * OPS);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, WORKERS as u64 * OPS - 1);
        // sum of 0..WORKERS*OPS
        let n = WORKERS as u64 * OPS;
        assert_eq!(h.sum, n * (n - 1) / 2);
    }

    #[test]
    fn cross_thread_spans_carry_distinct_thread_ordinals_and_parent() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector.clone());
        {
            let root = span("fanout.root");
            let parent = current_span_id();
            assert!(parent.is_some());
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(move || {
                        span_child_of("fanout.worker", parent).finish();
                    });
                }
            });
            drop(root);
        }
        drop(session);
        let spans = collector.spans();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "fanout.root").unwrap();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "fanout.worker").collect();
        assert_eq!(workers.len(), 2);
        for w in &workers {
            assert_eq!(w.parent, Some(root.id), "worker linked to coordinator");
            assert_ne!(w.thread, root.thread, "worker has its own thread track");
        }
        assert_ne!(workers[0].thread, workers[1].thread);
    }

    #[test]
    fn timed_records_histogram_only_when_enabled() {
        {
            let _serial = SESSION_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            assert_eq!(timed("t.ns", || 5), 5);
        }
        let collector = Arc::new(InMemoryCollector::new());
        let session = session(collector);
        assert_eq!(timed("t.ns", || 6), 6);
        let snap = metrics().snapshot();
        drop(session);
        assert_eq!(snap.histograms["t.ns"].count, 1);
    }
}
