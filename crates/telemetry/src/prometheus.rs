//! Prometheus text-format exposition of a [`MetricsSnapshot`].
//!
//! Dependency-free rendering of the [text exposition format] (version
//! 0.0.4, the format every Prometheus-compatible scraper accepts):
//! counters become `qoco_<name>_total`, gauges `qoco_<name>`, and each
//! histogram is exposed as a native Prometheus histogram: cumulative
//! `_bucket{le="..."}` lines over the registry's fixed decade bounds
//! ([`crate::BUCKET_BOUNDS`]) ending in `le="+Inf"`, plus `_sum`/`_count`
//! and `_min`/`_max` gauges.
//!
//! Dotted metric names are sanitized to the `[a-zA-Z0-9_]` charset the
//! format requires (`crowd.questions_asked` → `qoco_crowd_questions_asked`).
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::MetricsSnapshot;

/// `qoco_` + the name with every character outside `[a-zA-Z0-9_]` replaced
/// by `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(5 + name.len());
    out.push_str("qoco_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// A float in the format's number syntax (`Display` for f64 already emits
/// `inf`/`NaN`-free decimals for finite values; map the specials).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Render every metric in the Prometheus text exposition format.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let san = sanitize(name);
            out.push_str(&format!("# HELP {san}_total qoco counter {name}\n"));
            out.push_str(&format!("# TYPE {san}_total counter\n"));
            out.push_str(&format!("{san}_total {value}\n"));
        }
        for (name, value) in &self.gauges {
            let san = sanitize(name);
            out.push_str(&format!("# HELP {san} qoco gauge {name}\n"));
            out.push_str(&format!("# TYPE {san} gauge\n"));
            out.push_str(&format!("{san} {}\n", fmt_f64(*value)));
        }
        for (name, h) in &self.histograms {
            let san = sanitize(name);
            out.push_str(&format!("# HELP {san} qoco histogram {name}\n"));
            out.push_str(&format!("# TYPE {san} histogram\n"));
            for (bound, cumulative) in h.cumulative_buckets() {
                out.push_str(&format!("{san}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{san}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{san}_sum {}\n", h.sum));
            out.push_str(&format!("{san}_count {}\n", h.count));
            for (suffix, value) in [("min", h.min), ("max", h.max)] {
                out.push_str(&format!("# TYPE {san}_{suffix} gauge\n"));
                out.push_str(&format!("{san}_{suffix} {value}\n"));
            }
            // Observations above the last finite bound: visible as their
            // own counter so dashboards can alert on a saturated ladder.
            out.push_str(&format!("# TYPE {san}_overflow_total counter\n"));
            out.push_str(&format!("{san}_overflow_total {}\n", h.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn all_metric_kinds_are_exposed() {
        let r = MetricsRegistry::new();
        r.counter_add("crowd.questions_asked", 53);
        r.gauge_set("clean.progress", 0.75);
        r.histogram_record("split.compute_ns", 100);
        r.histogram_record("split.compute_ns", 300);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE qoco_crowd_questions_asked_total counter\n"));
        assert!(text.contains("qoco_crowd_questions_asked_total 53\n"));
        assert!(text.contains("# TYPE qoco_clean_progress gauge\n"));
        assert!(text.contains("qoco_clean_progress 0.75\n"));
        assert!(text.contains("# TYPE qoco_split_compute_ns histogram\n"));
        assert!(text.contains("qoco_split_compute_ns_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("qoco_split_compute_ns_bucket{le=\"1000\"} 2\n"));
        assert!(text.contains("qoco_split_compute_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("qoco_split_compute_ns_sum 400\n"));
        assert!(text.contains("qoco_split_compute_ns_count 2\n"));
        assert!(text.contains("qoco_split_compute_ns_min 100\n"));
        assert!(text.contains("qoco_split_compute_ns_max 300\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_plus_inf() {
        let r = MetricsRegistry::new();
        // spread across decades, with one observation past the last bound
        for v in [50, 50, 900, 5_000_000, 30_000_000_000] {
            r.histogram_record("h.ns", v);
        }
        let text = r.snapshot().to_prometheus_text();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("qoco_h_ns_bucket")) {
            bucket_lines += 1;
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(
                count >= last,
                "cumulative bucket counts must be monotone: {line}"
            );
            last = count;
        }
        assert_eq!(bucket_lines, crate::BUCKET_BOUNDS.len() + 1);
        // the +Inf bucket is last and equals the total observation count,
        // even when observations exceed every finite bound
        assert!(text.contains("qoco_h_ns_bucket{le=\"+Inf\"} 5\n"));
        assert_eq!(last, 5);
        assert!(text.contains("qoco_h_ns_count 5\n"));
        // the over-ladder observation is named, not silently clamped
        assert!(text.contains("# TYPE qoco_h_ns_overflow_total counter\n"));
        assert!(text.contains("qoco_h_ns_overflow_total 1\n"));
    }

    #[test]
    fn names_are_sanitized_to_the_legal_charset() {
        let r = MetricsRegistry::new();
        r.counter_add("weird-name.with/chars", 1);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("qoco_weird_name_with_chars_total 1\n"));
    }

    #[test]
    fn non_finite_gauges_use_prometheus_spellings() {
        let r = MetricsRegistry::new();
        r.gauge_set("g.inf", f64::INFINITY);
        r.gauge_set("g.nan", f64::NAN);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("qoco_g_inf +Inf\n"));
        assert!(text.contains("qoco_g_nan NaN\n"));
    }
}
