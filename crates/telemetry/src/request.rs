//! Request provenance: *which HTTP request* caused each downstream record.
//!
//! The serve layer (PR 9) turned cleaning into a multi-session HTTP
//! service, which broke the audit chain at the HTTP boundary: a crowd
//! question's [`crate::DecisionRecord`] and journal line said *why* the
//! algorithm asked, but not *which request* made it ask. This module closes
//! that gap with the same thread-local pattern as decision provenance
//! ([`crate::begin_decision`]): the connection thread marks the request it
//! is serving, and every layer underneath — the machine step, the journal,
//! the decision dispatcher — reads the marker with no API coupling.
//!
//! Two pieces:
//!
//! 1. **The current-request marker** — [`begin_request`] stamps this
//!    thread with a request id (an inbound `X-Request-Id`, a `traceparent`
//!    trace id, or a listener-generated `qr-N`); [`current_request_id`]
//!    reads it back; [`end_request`] clears it. Ids are caller-provided
//!    strings, not session-scoped counters, because the whole point is to
//!    honor ids minted *outside* this process.
//! 2. **The in-flight registry** — while a request is between
//!    [`begin_request`] and [`end_request`] it is visible in
//!    [`inflight_requests`], together with its route, session, start time
//!    and current machine phase ([`set_request_phase`]). `GET
//!    /api/requests` serves this snapshot live.
//!
//! Everything follows the zero-cost contract: with no collector installed
//! every entry point returns after one relaxed atomic load.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic token distinguishing registry entries even when two requests
/// carry the same (client-chosen) id. 0 is the "no request" sentinel.
static NEXT_REQUEST_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Live requests, keyed by token; see [`inflight_requests`].
static INFLIGHT: Mutex<BTreeMap<u64, InflightRequest>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// The request this thread is currently serving (None = none).
    static CURRENT_REQUEST: RefCell<Option<String>> = const { RefCell::new(None) };
    /// Registry token of the request this thread is serving (0 = none).
    static CURRENT_TOKEN: Cell<u64> = const { Cell::new(0) };
}

/// One request currently being served, as reported by
/// [`inflight_requests`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InflightRequest {
    /// The request id (inbound or listener-generated).
    pub id: String,
    /// HTTP method.
    pub method: String,
    /// Request path (no query string).
    pub route: String,
    /// Cleaning session the request touched, once known.
    pub session: Option<String>,
    /// What the request is doing right now (`"read"`, `"handler"`,
    /// `"machine.step"`, …); see [`set_request_phase`].
    pub phase: &'static str,
    /// Session-relative start time, ns.
    pub started_ns: u64,
}

fn inflight_map() -> std::sync::MutexGuard<'static, BTreeMap<u64, InflightRequest>> {
    INFLIGHT.lock().unwrap_or_else(|p| p.into_inner())
}

/// Mark this thread as serving request `id`: sets the thread-local marker
/// read by [`current_request_id`] and registers the request in the
/// in-flight registry. Returns a registry token for [`end_request`] — 0,
/// touching nothing, when telemetry is disabled.
pub fn begin_request(id: &str, method: &str, route: &str) -> u64 {
    if !crate::enabled() {
        return 0;
    }
    let token = NEXT_REQUEST_TOKEN.fetch_add(1, Ordering::Relaxed);
    CURRENT_REQUEST.with(|c| *c.borrow_mut() = Some(id.to_string()));
    CURRENT_TOKEN.with(|c| c.set(token));
    inflight_map().insert(
        token,
        InflightRequest {
            id: id.to_string(),
            method: method.to_string(),
            route: route.to_string(),
            session: None,
            phase: "read",
            started_ns: crate::now_ns(),
        },
    );
    token
}

/// The id of the request this thread is currently serving, if any. The
/// journal and the decision dispatcher stamp their records with this.
pub fn current_request_id() -> Option<String> {
    if !crate::enabled() {
        return None;
    }
    CURRENT_REQUEST.with(|c| c.borrow().clone())
}

/// Update the in-flight phase of this thread's current request (shown by
/// `GET /api/requests`). No-op with telemetry disabled or no live request.
pub fn set_request_phase(phase: &'static str) {
    if !crate::enabled() {
        return;
    }
    let token = CURRENT_TOKEN.with(|c| c.get());
    if token == 0 {
        return;
    }
    if let Some(entry) = inflight_map().get_mut(&token) {
        entry.phase = phase;
    }
}

/// Attach a cleaning-session id to this thread's current request, once the
/// handler has resolved which session the request touches.
pub fn set_request_session(session: &str) {
    if !crate::enabled() {
        return;
    }
    let token = CURRENT_TOKEN.with(|c| c.get());
    if token == 0 {
        return;
    }
    if let Some(entry) = inflight_map().get_mut(&token) {
        entry.session = Some(session.to_string());
    }
}

/// Finish the request opened by [`begin_request`]: remove it from the
/// in-flight registry, clear this thread's marker, and return the final
/// registry entry (so the caller can read the session the handler tagged
/// via [`set_request_session`]). With token 0 and telemetry disabled this
/// is one relaxed load.
pub fn end_request(token: u64) -> Option<InflightRequest> {
    if token == 0 && !crate::enabled() {
        return None;
    }
    clear_current_request();
    if token == 0 {
        return None;
    }
    inflight_map().remove(&token)
}

/// Unconditionally clear this thread's current-request marker (the
/// [`crate::clear_current_decision`] analogue: needed after a non-local
/// exit so a stale id cannot leak onto whatever runs on this thread next).
pub fn clear_current_request() {
    CURRENT_REQUEST.with(|c| c.borrow_mut().take());
    CURRENT_TOKEN.with(|c| c.set(0));
}

/// Snapshot of every request currently between [`begin_request`] and
/// [`end_request`], in start order. Empty when telemetry is disabled.
pub fn inflight_requests() -> Vec<InflightRequest> {
    if !crate::enabled() {
        return Vec::new();
    }
    inflight_map().values().cloned().collect()
}

/// Clear the in-flight registry; called by [`crate::install`] so a leaked
/// request from a previous session cannot haunt the next one's inspector.
pub(crate) fn clear_registry() {
    inflight_map().clear();
}

/// Intern a dynamically-built metric name to the `&'static str` the
/// registry requires. Each distinct name is leaked exactly once and then
/// memoized, which is safe precisely because the serve layer only ever
/// builds names from a *fixed* route/status vocabulary — the set is bounded
/// by construction. Never call this with unbounded user input.
pub fn intern_metric_name(name: &str) -> &'static str {
    static INTERNED: Mutex<BTreeMap<&'static str, ()>> = Mutex::new(BTreeMap::new());
    let mut map = INTERNED.lock().unwrap_or_else(|p| p.into_inner());
    if let Some((interned, ())) = map.get_key_value(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(leaked, ());
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryCollector;
    use std::sync::Arc;

    #[test]
    fn disabled_request_marking_is_inert() {
        let _serial = crate::SESSION_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        assert!(!crate::enabled());
        assert_eq!(begin_request("qr-1", "GET", "/health"), 0);
        assert_eq!(current_request_id(), None);
        set_request_phase("handler");
        set_request_session("s1");
        end_request(0);
        assert!(inflight_requests().is_empty());
    }

    #[test]
    fn request_marker_tags_the_thread_and_the_inflight_registry() {
        let collector = Arc::new(InMemoryCollector::new());
        let session = crate::session(collector);
        let token = begin_request("req-abc", "POST", "/sessions/s1/answers");
        assert_ne!(token, 0);
        assert_eq!(current_request_id().as_deref(), Some("req-abc"));
        set_request_phase("machine.step");
        set_request_session("s1");
        let live = inflight_requests();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].id, "req-abc");
        assert_eq!(live[0].method, "POST");
        assert_eq!(live[0].route, "/sessions/s1/answers");
        assert_eq!(live[0].phase, "machine.step");
        assert_eq!(live[0].session.as_deref(), Some("s1"));
        end_request(token);
        assert_eq!(current_request_id(), None);
        assert!(inflight_requests().is_empty());
        drop(session);
    }

    #[test]
    fn install_clears_a_leaked_inflight_entry() {
        let session = crate::session(Arc::new(InMemoryCollector::new()));
        let _leaked = begin_request("leak", "GET", "/health");
        drop(session);
        let session = crate::session(Arc::new(InMemoryCollector::new()));
        assert!(
            inflight_requests().is_empty(),
            "a new install must not inherit stale in-flight entries"
        );
        clear_current_request();
        drop(session);
    }

    #[test]
    fn interning_is_memoized_and_stable() {
        let a = intern_metric_name("serve.requests.report.2xx");
        let b = intern_metric_name("serve.requests.report.2xx");
        assert!(std::ptr::eq(a, b), "same name must intern to one leak");
        assert_eq!(a, "serve.requests.report.2xx");
    }
}
