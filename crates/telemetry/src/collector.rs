//! Collector backends: where finished spans and events go.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::decision::DecisionRecord;
use crate::json::push_json_str;
use crate::metrics::MetricsSnapshot;
use crate::span::{EventRecord, SpanRecord};
use crate::timeline::{SessionTimeline, TimelineEvent};

/// A sink for telemetry records. Implementations must be thread-safe: the
/// cleaner's parallel crowd finishes spans from worker threads.
pub trait Collector: Send + Sync {
    /// Accept a finished span.
    fn record_span(&self, span: &SpanRecord);
    /// Accept a point event.
    fn record_event(&self, event: &EventRecord);
    /// Accept a finished decision. Defaulted to a no-op so collectors that
    /// predate decision provenance keep compiling unchanged.
    fn record_decision(&self, decision: &DecisionRecord) {
        let _ = decision;
    }
}

fn unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Thread-safe in-memory collector; the backing store for
/// [`SessionTimeline`] assembly and for tests.
#[derive(Default)]
pub struct InMemoryCollector {
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
    decisions: Mutex<Vec<DecisionRecord>>,
}

impl InMemoryCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all spans recorded so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        unpoisoned(&self.spans).clone()
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<EventRecord> {
        unpoisoned(&self.events).clone()
    }

    /// Snapshot of all decisions recorded so far.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        unpoisoned(&self.decisions).clone()
    }

    /// Drop everything recorded so far.
    pub fn clear(&self) {
        unpoisoned(&self.spans).clear();
        unpoisoned(&self.events).clear();
        unpoisoned(&self.decisions).clear();
    }

    /// Assemble a [`SessionTimeline`] from the recorded spans and events,
    /// a metrics snapshot, and any additional caller-supplied events (for
    /// example a crowd transcript bridged to [`TimelineEvent`]s).
    pub fn timeline(
        &self,
        extra_events: Vec<TimelineEvent>,
        metrics: MetricsSnapshot,
    ) -> SessionTimeline {
        let mut events: Vec<TimelineEvent> = self
            .events()
            .into_iter()
            .map(TimelineEvent::from_record)
            .collect();
        events.extend(extra_events);
        SessionTimeline::new(self.spans(), events, metrics)
    }

    /// Render everything recorded so far as a Chrome trace-event JSON
    /// document (see [`crate::chrome_trace_json`]).
    pub fn chrome_trace(&self) -> String {
        crate::chrome_trace_json_full(&self.spans(), &self.events(), &self.decisions())
    }

    /// Write the Chrome trace to `path` (Perfetto / `chrome://tracing`
    /// loadable).
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }
}

/// Fan records out to several collectors — e.g. an [`InMemoryCollector`]
/// (for the Chrome trace and timeline) and a [`JsonlCollector`] (for the
/// streaming export) in one session.
pub struct FanoutCollector {
    sinks: Vec<Arc<dyn Collector>>,
}

impl FanoutCollector {
    /// A collector forwarding every record to each of `sinks`, in order.
    pub fn new(sinks: Vec<Arc<dyn Collector>>) -> Self {
        FanoutCollector { sinks }
    }
}

impl Collector for FanoutCollector {
    fn record_span(&self, span: &SpanRecord) {
        for sink in &self.sinks {
            sink.record_span(span);
        }
    }

    fn record_event(&self, event: &EventRecord) {
        for sink in &self.sinks {
            sink.record_event(event);
        }
    }

    fn record_decision(&self, decision: &DecisionRecord) {
        for sink in &self.sinks {
            sink.record_decision(decision);
        }
    }
}

impl Collector for InMemoryCollector {
    fn record_span(&self, span: &SpanRecord) {
        unpoisoned(&self.spans).push(span.clone());
    }

    fn record_event(&self, event: &EventRecord) {
        unpoisoned(&self.events).push(event.clone());
    }

    fn record_decision(&self, decision: &DecisionRecord) {
        unpoisoned(&self.decisions).push(decision.clone());
    }
}

/// Streaming JSON-lines exporter: one JSON object per span/event/metric,
/// one per line, suitable for `jq` and for replaying sessions offline.
pub struct JsonlCollector {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlCollector {
    /// Create (truncate) `path` and stream records to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Create (truncate) `path` and stream records to it **write-through**:
    /// no userspace buffer, one `write` per line. The serve layer uses this
    /// — its export is an input to the `validate-requests` gate, which
    /// replays the artifacts of deliberately `kill -9`ed runs, so every
    /// line handed to the collector must already be on disk.
    pub fn create_write_through(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Stream records to an arbitrary writer.
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlCollector {
            out: Mutex::new(writer),
        }
    }

    fn write_line(&self, line: &str) {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        let mut out = unpoisoned(&self.out);
        // One write call per line so a write-through export never tears a
        // line mid-record, and telemetry must never take the session down:
        // I/O errors are swallowed (the exporter is best-effort by design).
        let _ = out.write_all(buf.as_bytes());
    }

    /// Append every metric in `snapshot` as a `"metric"` line; call once
    /// at session end.
    pub fn write_metrics(&self, snapshot: &MetricsSnapshot) {
        for line in snapshot.to_jsonl_lines() {
            self.write_line(&line);
        }
    }

    /// Append pre-rendered JSONL lines verbatim — how the qoco-watch
    /// sample series (`SeriesStore::to_jsonl_lines`) rides in the same
    /// export as spans/events/metrics.
    pub fn write_raw_lines<'a>(&self, lines: impl IntoIterator<Item = &'a str>) {
        for line in lines {
            self.write_line(line);
        }
    }

    /// Flush buffered output.
    pub fn flush(&self) {
        let _ = unpoisoned(&self.out).flush();
    }
}

impl Drop for JsonlCollector {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Collector for JsonlCollector {
    fn record_span(&self, span: &SpanRecord) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"type\":\"span\",\"id\":");
        line.push_str(&span.id.to_string());
        if let Some(parent) = span.parent {
            line.push_str(",\"parent\":");
            line.push_str(&parent.to_string());
        }
        line.push_str(",\"name\":");
        push_json_str(&mut line, span.name);
        line.push_str(",\"tid\":");
        line.push_str(&span.thread.to_string());
        line.push_str(",\"start_ns\":");
        line.push_str(&span.start_ns.to_string());
        line.push_str(",\"dur_ns\":");
        line.push_str(&span.duration_ns.to_string());
        if !span.fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in span.fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                push_json_str(&mut line, k);
                line.push(':');
                push_json_str(&mut line, v);
            }
            line.push('}');
        }
        line.push('}');
        self.write_line(&line);
    }

    fn record_event(&self, event: &EventRecord) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"type\":\"event\",\"at_ns\":");
        line.push_str(&event.at_ns.to_string());
        if let Some(span) = event.span {
            line.push_str(",\"span\":");
            line.push_str(&span.to_string());
        }
        line.push_str(",\"name\":");
        push_json_str(&mut line, event.name);
        line.push_str(",\"tid\":");
        line.push_str(&event.thread.to_string());
        line.push_str(",\"detail\":");
        push_json_str(&mut line, &event.detail);
        line.push('}');
        self.write_line(&line);
    }

    fn record_decision(&self, decision: &DecisionRecord) {
        let mut line = String::with_capacity(192);
        line.push_str("{\"type\":\"decision\",\"id\":");
        line.push_str(&decision.id.to_string());
        line.push_str(",\"at_ns\":");
        line.push_str(&decision.at_ns.to_string());
        if let Some(span) = decision.span {
            line.push_str(",\"span\":");
            line.push_str(&span.to_string());
        }
        line.push_str(",\"tid\":");
        line.push_str(&decision.thread.to_string());
        line.push_str(",\"kind\":");
        push_json_str(&mut line, decision.kind);
        line.push_str(",\"question\":");
        push_json_str(&mut line, &decision.question);
        line.push_str(",\"outcome\":");
        push_json_str(&mut line, &decision.outcome);
        line.push_str(",\"evidence\":{");
        for (i, (k, v)) in decision.evidence.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_json_str(&mut line, k);
            line.push(':');
            push_json_str(&mut line, v);
        }
        line.push('}');
        // emitted only when present, so serve-less exports stay byte-stable
        if let Some(request) = &decision.request {
            line.push_str(",\"request\":");
            push_json_str(&mut line, request);
        }
        line.push('}');
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            unpoisoned(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample_span() -> SpanRecord {
        SpanRecord {
            id: 2,
            parent: Some(1),
            name: "clean.deletion_phase",
            thread: 0,
            start_ns: 100,
            duration_ns: 250,
            fields: vec![("answer", "(\"BRA\")".to_string())],
        }
    }

    #[test]
    fn in_memory_collects_and_clears() {
        let c = InMemoryCollector::new();
        c.record_span(&sample_span());
        c.record_event(&EventRecord {
            at_ns: 120,
            span: Some(2),
            thread: 0,
            name: "crowd.verify_fact",
            detail: "Teams(BRA, EU)".to_string(),
        });
        assert_eq!(c.spans().len(), 1);
        assert_eq!(c.events().len(), 1);
        c.clear();
        assert!(c.spans().is_empty());
        assert!(c.events().is_empty());
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let c = JsonlCollector::from_writer(Box::new(SharedBuf(buf.clone())));
        c.record_span(&sample_span());
        c.record_event(&EventRecord {
            at_ns: 120,
            span: None,
            thread: 3,
            name: "crowd.complete",
            detail: "tab\there".to_string(),
        });
        c.flush();
        let text = String::from_utf8(unpoisoned(&buf).clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"type":"span","id":2,"parent":1,"name":"clean.deletion_phase","tid":0,"start_ns":100,"dur_ns":250,"fields":{"answer":"(\"BRA\")"}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"type":"event","at_ns":120,"name":"crowd.complete","tid":3,"detail":"tab\there"}"#
        );
    }

    #[test]
    fn fanout_forwards_to_every_sink() {
        let a = Arc::new(InMemoryCollector::new());
        let b = Arc::new(InMemoryCollector::new());
        let fanout = FanoutCollector::new(vec![a.clone(), b.clone()]);
        fanout.record_span(&sample_span());
        fanout.record_decision(&sample_decision());
        assert_eq!(a.spans().len(), 1);
        assert_eq!(b.spans().len(), 1);
        assert_eq!(a.decisions().len(), 1);
        assert_eq!(b.decisions().len(), 1);
    }

    fn sample_decision() -> DecisionRecord {
        DecisionRecord {
            id: 3,
            at_ns: 140,
            span: Some(2),
            thread: 0,
            kind: "deletion.verify_fact",
            question: "TRUE(Games(\"12.07.98\"))?".to_string(),
            outcome: "false".to_string(),
            evidence: vec![
                ("selector", "most-frequent".to_string()),
                ("ranking", "g98=2 > g10=2".to_string()),
            ],
            request: None,
        }
    }

    #[test]
    fn jsonl_decision_lines_are_well_formed() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let c = JsonlCollector::from_writer(Box::new(SharedBuf(buf.clone())));
        c.record_decision(&sample_decision());
        c.record_decision(&DecisionRecord {
            request: Some("qr-5".to_string()),
            ..sample_decision()
        });
        c.flush();
        let text = String::from_utf8(unpoisoned(&buf).clone()).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            r#"{"type":"decision","id":3,"at_ns":140,"span":2,"tid":0,"kind":"deletion.verify_fact","question":"TRUE(Games(\"12.07.98\"))?","outcome":"false","evidence":{"selector":"most-frequent","ranking":"g98=2 > g10=2"}}"#
        );
        assert_eq!(
            lines.next().unwrap(),
            r#"{"type":"decision","id":3,"at_ns":140,"span":2,"tid":0,"kind":"deletion.verify_fact","question":"TRUE(Games(\"12.07.98\"))?","outcome":"false","evidence":{"selector":"most-frequent","ranking":"g98=2 > g10=2"},"request":"qr-5"}"#
        );
    }

    #[test]
    fn in_memory_chrome_trace_covers_recorded_spans() {
        let c = InMemoryCollector::new();
        c.record_span(&sample_span());
        let trace = c.chrome_trace();
        assert!(trace.contains("clean.deletion_phase"));
        assert!(trace.contains("\"traceEvents\""));
    }
}
