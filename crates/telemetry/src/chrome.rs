//! Chrome trace-event exporter.
//!
//! Serializes collected [`SpanRecord`]s and [`EventRecord`]s into the
//! [Chrome trace-event format], the JSON dialect understood by
//! `chrome://tracing` and [Perfetto] (ui.perfetto.dev → "Open trace
//! file"). Spans become `"ph":"X"` complete events and point events become
//! `"ph":"i"` instants; each telemetry thread ordinal (see
//! [`crate::thread_ordinal`]) maps to its own track, so the parallel eval
//! path's fan-out across rayon-shim worker threads is visible as stacked
//! per-worker lanes under the coordinator's track.
//!
//! The output uses the *object* form (`{"traceEvents":[…]}`), which both
//! viewers accept and which leaves room for top-level metadata. Timestamps
//! are microseconds (the format's unit) with nanosecond precision kept in
//! the fractional part.
//!
//! [Chrome trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://perfetto.dev

use std::collections::BTreeSet;

use crate::decision::DecisionRecord;
use crate::json::push_json_str;
use crate::span::{EventRecord, SpanRecord};

/// Microseconds with the sub-µs remainder preserved (trace-event `ts`/`dur`
/// are µs doubles).
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

fn push_common(out: &mut String, name: &str, ph: char, tid: u64, ts_ns: u64) {
    // Alert lifecycle instants get their own category so Perfetto's
    // category filter can isolate the SLO story from the span soup.
    let cat = if name.starts_with("alert.") {
        "alert"
    } else {
        "qoco"
    };
    out.push_str("{\"name\":");
    push_json_str(out, name);
    out.push_str(&format!(
        ",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":"
    ));
    push_us(out, ts_ns);
}

/// Render `spans` and `events` as one Chrome trace-event JSON document
/// (object form). Includes `thread_name` metadata so viewers label each
/// track: the track hosting only `eval.par_chunk` spans is an eval worker,
/// everything else is a generic qoco thread.
pub fn chrome_trace_json(spans: &[SpanRecord], events: &[EventRecord]) -> String {
    chrome_trace_json_full(spans, events, &[])
}

/// [`chrome_trace_json`] plus decision provenance: each [`DecisionRecord`]
/// becomes a `"ph":"i"` instant whose `args` carry the full structured
/// cause (decision id, question, outcome, and every evidence pair), so the
/// "why was this question asked" answer is one click away in Perfetto.
pub fn chrome_trace_json_full(
    spans: &[SpanRecord],
    events: &[EventRecord],
    decisions: &[DecisionRecord],
) -> String {
    let mut out = String::with_capacity(256 + 160 * (spans.len() + events.len() + decisions.len()));
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    // One process_name + one thread_name metadata record per track.
    sep(&mut out);
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"qoco\"}}");
    let tids: BTreeSet<u64> = spans
        .iter()
        .map(|s| s.thread)
        .chain(events.iter().map(|e| e.thread))
        .chain(decisions.iter().map(|d| d.thread))
        .collect();
    for &tid in &tids {
        let mut names = spans.iter().filter(|s| s.thread == tid).map(|s| s.name);
        let worker = names.clone().next().is_some() && names.all(|n| n == "eval.par_chunk");
        let label = if worker {
            format!("eval worker {tid}")
        } else {
            format!("thread {tid}")
        };
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":"
        ));
        push_json_str(&mut out, &label);
        out.push_str(&format!("}}}},\n{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"sort_index\":{tid}}}}}"));
    }

    for s in spans {
        sep(&mut out);
        push_common(&mut out, s.name, 'X', s.thread, s.start_ns);
        out.push_str(",\"dur\":");
        push_us(&mut out, s.duration_ns);
        out.push_str(&format!(",\"args\":{{\"span_id\":\"{}\"", s.id));
        if let Some(p) = s.parent {
            out.push_str(&format!(",\"parent\":\"{p}\""));
        }
        for (k, v) in &s.fields {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            push_json_str(&mut out, v);
        }
        out.push_str("}}");
    }

    for e in events {
        sep(&mut out);
        push_common(&mut out, e.name, 'i', e.thread, e.at_ns);
        // "t": thread-scoped instant (a tick on the emitting track)
        out.push_str(",\"s\":\"t\",\"args\":{\"detail\":");
        push_json_str(&mut out, &e.detail);
        if let Some(span) = e.span {
            out.push_str(&format!(",\"span_id\":\"{span}\""));
        }
        out.push_str("}}");
    }

    for d in decisions {
        sep(&mut out);
        push_common(&mut out, d.kind, 'i', d.thread, d.at_ns);
        out.push_str(&format!(
            ",\"s\":\"t\",\"args\":{{\"decision_id\":\"{}\",\"question\":",
            d.id
        ));
        push_json_str(&mut out, &d.question);
        out.push_str(",\"outcome\":");
        push_json_str(&mut out, &d.outcome);
        if let Some(span) = d.span {
            out.push_str(&format!(",\"span_id\":\"{span}\""));
        }
        if let Some(request) = &d.request {
            out.push_str(",\"request\":");
            push_json_str(&mut out, request);
        }
        for (k, v) in &d.evidence {
            out.push(',');
            push_json_str(&mut out, k);
            out.push(':');
            push_json_str(&mut out, v);
        }
        out.push_str("}}");
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, name: &'static str, thread: u64, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: if id > 1 { Some(1) } else { None },
            name,
            thread,
            start_ns: start,
            duration_ns: dur,
            fields: vec![("k", "v\"q".to_string())],
        }
    }

    #[test]
    fn object_form_with_spans_and_instants() {
        let spans = vec![
            span(1, "clean.session", 0, 0, 2_500),
            span(2, "eval.par_chunk", 1, 500, 1_000),
        ];
        let events = vec![EventRecord {
            at_ns: 700,
            span: Some(1),
            thread: 0,
            name: "crowd.verify_fact",
            detail: "Teams(BRA, EU)".to_string(),
        }];
        let json = chrome_trace_json(&spans, &events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""ts":0.500,"dur":1.000"#));
        assert!(json.contains(r#""tid":1"#));
        assert!(json.contains(r#""name":"eval worker 1""#));
        assert!(json.contains(r#""name":"thread 0""#));
        assert!(json.contains(r#""parent":"1""#));
        assert!(json.contains(r#""k":"v\"q""#));
    }

    #[test]
    fn alert_instants_carry_their_own_category() {
        let events = vec![EventRecord {
            at_ns: 42,
            span: None,
            thread: 0,
            name: "alert.firing",
            detail: "crowd_errors -> firing (value 6.000)".to_string(),
        }];
        let json = chrome_trace_json(&[], &events);
        assert!(
            json.contains(r#""name":"alert.firing","cat":"alert""#),
            "{json}"
        );
        assert!(json.contains(r#""ph":"i""#));
    }

    #[test]
    fn empty_input_is_still_valid() {
        let json = chrome_trace_json(&[], &[]);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("process_name"));
    }

    #[test]
    fn decisions_become_instants_with_structured_args() {
        let decisions = vec![DecisionRecord {
            id: 4,
            at_ns: 900,
            span: Some(1),
            thread: 0,
            kind: "deletion.verify_fact",
            question: "TRUE(g98)?".to_string(),
            outcome: "false".to_string(),
            evidence: vec![("ranking", "g98=2 > g10=2".to_string())],
            request: None,
        }];
        let json =
            chrome_trace_json_full(&[span(1, "clean.session", 0, 0, 2_000)], &[], &decisions);
        assert!(json.contains(r#""name":"deletion.verify_fact""#));
        assert!(json.contains(r#""decision_id":"4""#));
        assert!(json.contains(r#""question":"TRUE(g98)?""#));
        assert!(json.contains(r#""outcome":"false""#));
        assert!(json.contains(r#""ranking":"g98=2 > g10=2""#));
    }

    #[test]
    fn sub_microsecond_precision_is_kept() {
        let mut s = String::new();
        push_us(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        let mut s = String::new();
        push_us(&mut s, 7);
        assert_eq!(s, "0.007");
    }
}
