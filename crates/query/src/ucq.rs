//! Unions of conjunctive queries.
//!
//! The paper (Section 2) notes that all results extend to unions of
//! conjunctive queries with inequalities; QOCO processes each disjunct
//! independently (a wrong answer must be removed from *every* disjunct that
//! produces it; a missing answer needs only *one* disjunct to produce it).

use std::fmt;

use crate::ast::{ConjunctiveQuery, QueryError};

/// A union `Q = Q₁ ∪ … ∪ Qₖ` of conjunctive queries with identical head
/// arity.
#[derive(Clone, PartialEq, Eq)]
pub struct UnionQuery {
    name: String,
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Build a union query; all disjuncts must have the same head width.
    pub fn new(
        name: impl Into<String>,
        disjuncts: Vec<ConjunctiveQuery>,
    ) -> Result<Self, QueryError> {
        if disjuncts.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        let width = disjuncts[0].head().len();
        for d in &disjuncts[1..] {
            if d.head().len() != width {
                return Err(QueryError::AnswerArity {
                    expected: width,
                    got: d.head().len(),
                });
            }
        }
        Ok(UnionQuery {
            name: name.into(),
            disjuncts,
        })
    }

    /// The union's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Head width shared by all disjuncts.
    pub fn head_width(&self) -> usize {
        self.disjuncts[0].head().len()
    }

    /// Drop disjuncts subsumed by another disjunct (using the sound
    /// homomorphism containment test) and minimize the survivors. The
    /// result is answer-equivalent and never larger; with fewer disjuncts
    /// QOCO asks fewer per-disjunct verification questions.
    pub fn minimized(&self) -> UnionQuery {
        let mut kept: Vec<ConjunctiveQuery> = Vec::new();
        'outer: for (i, d) in self.disjuncts.iter().enumerate() {
            // subsumed by an already-kept disjunct?
            for k in &kept {
                if crate::homomorphism::contains(k, d) {
                    continue 'outer;
                }
            }
            // subsumed by a later disjunct that will strictly survive?
            for later in &self.disjuncts[i + 1..] {
                if crate::homomorphism::contains(later, d)
                    && !crate::homomorphism::contains(d, later)
                {
                    continue 'outer;
                }
            }
            kept.push(crate::homomorphism::minimize(d));
        }
        UnionQuery {
            name: self.name.clone(),
            disjuncts: kept,
        }
    }
}

impl fmt::Debug for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f, " ∪")?;
            }
            write!(f, "{d:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use qoco_data::Schema;

    #[test]
    fn union_requires_equal_head_width() {
        let s = Schema::builder()
            .relation("A", &["x", "y"])
            .build()
            .unwrap();
        let q1 = parse_query(&s, "(x) :- A(x, y)").unwrap();
        let q2 = parse_query(&s, "(x, y) :- A(x, y)").unwrap();
        assert!(UnionQuery::new("U", vec![q1.clone(), q2]).is_err());
        let u = UnionQuery::new("U", vec![q1.clone(), q1]).unwrap();
        assert_eq!(u.head_width(), 1);
        assert_eq!(u.disjuncts().len(), 2);
        assert_eq!(u.name(), "U");
    }

    #[test]
    fn empty_union_is_rejected() {
        assert!(UnionQuery::new("U", vec![]).is_err());
    }

    #[test]
    fn minimized_drops_subsumed_disjuncts() {
        let s = Schema::builder()
            .relation("E", &["a", "b"])
            .build()
            .unwrap();
        let general = parse_query(&s, "(x) :- E(x, y)").unwrap();
        let special = parse_query(&s, "(x) :- E(x, y), E(y, z)").unwrap();
        let u = UnionQuery::new("U", vec![general.clone(), special]).unwrap();
        let m = u.minimized();
        assert_eq!(m.disjuncts().len(), 1, "the 2-path disjunct is subsumed");
        assert_eq!(m.disjuncts()[0].atoms(), general.atoms());
    }

    #[test]
    fn minimized_minimizes_survivors() {
        let s = Schema::builder()
            .relation("E", &["a", "b"])
            .build()
            .unwrap();
        let redundant = parse_query(&s, "(x) :- E(x, y), E(x, z)").unwrap();
        let u = UnionQuery::new("U", vec![redundant]).unwrap();
        let m = u.minimized();
        assert_eq!(m.disjuncts()[0].atoms().len(), 1);
    }

    #[test]
    fn minimized_keeps_incomparable_disjuncts() {
        let s = Schema::builder()
            .relation("E", &["a", "b"])
            .relation("L", &["a"])
            .build()
            .unwrap();
        let qa = parse_query(&s, "(x) :- E(x, y)").unwrap();
        let qb = parse_query(&s, "(x) :- L(x)").unwrap();
        let u = UnionQuery::new("U", vec![qa, qb]).unwrap();
        assert_eq!(u.minimized().disjuncts().len(), 2);
    }
}
