//! # qoco-query — conjunctive queries with inequalities
//!
//! The view language of the paper (Section 2): conjunctive queries of the
//! form
//!
//! ```text
//! Ans(ū₀) :- R₁(ū₁), …, Rₙ(ūₙ), E₁, …, Eₘ
//! ```
//!
//! where each `ūᵢ` mixes variables and constants and each `Eⱼ` is an
//! inequality `l ≠ r` between a variable and a variable-or-constant. This
//! crate provides the AST, a hand-written datalog-style parser, safety
//! validation, *subqueries* (Definition 5.3), the embedding `Q|t` of a
//! missing answer into a query (Section 5.1), the weighted *query graph*
//! used by the Min-Cut split strategy (Section 5.2), and unions of
//! conjunctive queries (the paper notes all results extend to UCQs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod ast;
pub mod graph;
pub mod homomorphism;
pub mod parser;
pub mod subquery;
pub mod ucq;

pub use aggregate::unfold_at_least;
pub use ast::{Atom, ConjunctiveQuery, Inequality, QueryError, Term, Var};
pub use graph::{QueryGraph, QueryGraphEdge};
pub use homomorphism::{contains, equivalent, find_homomorphism, minimize, Homomorphism};
pub use parser::{parse_query, ParseError};
pub use subquery::{embed_answer, is_subquery, split_by_atom_partition, split_subset, SplitError};
pub use ucq::UnionQuery;
