//! The weighted *query graph* of Section 5.2 (query-directed split).
//!
//! Vertices are body atoms. An edge connects two atoms that share a variable
//! or whose variables are linked by an inequality. The edge weight is the
//! number of shared variables plus the number of inequalities relevant to
//! the variables of the two atoms. The Min-Cut split strategy cuts this
//! graph to produce two subqueries while minimizing lost join/inequality
//! structure.

use std::collections::BTreeSet;

use crate::ast::{ConjunctiveQuery, Term, Var};

/// A weighted edge between two atoms of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryGraphEdge {
    /// Index of the first atom.
    pub a: usize,
    /// Index of the second atom (always `> a`).
    pub b: usize,
    /// Shared-variable count plus relevant-inequality count.
    pub weight: u64,
}

/// The query graph: one vertex per body atom, weighted edges per shared
/// structure.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    n: usize,
    edges: Vec<QueryGraphEdge>,
}

impl QueryGraph {
    /// Build the query graph of `q`.
    pub fn build(q: &ConjunctiveQuery) -> Self {
        let atom_vars: Vec<BTreeSet<Var>> = q
            .atoms()
            .iter()
            .map(|a| a.vars().into_iter().collect())
            .collect();
        let n = atom_vars.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let shared = atom_vars[i].intersection(&atom_vars[j]).count() as u64;
                // Inequalities "relevant to the variables of those same two
                // nodes": every variable of the inequality appears in atom i
                // or atom j, and it touches both atoms (otherwise it is not
                // about this pair).
                let mut ineq = 0u64;
                for e in q.inequalities() {
                    let vars = e.vars();
                    let all_covered = vars
                        .iter()
                        .all(|v| atom_vars[i].contains(v) || atom_vars[j].contains(v));
                    let touches_i = vars.iter().any(|v| atom_vars[i].contains(v));
                    let touches_j = vars.iter().any(|v| atom_vars[j].contains(v));
                    // Constant-rhs inequalities touch one atom's variable
                    // only; they bind the pair when that variable is shared.
                    let const_rhs = matches!(e.rhs, Term::Const(_));
                    if all_covered && touches_i && touches_j && !const_rhs {
                        ineq += 1;
                    }
                }
                let w = shared + ineq;
                if w > 0 {
                    edges.push(QueryGraphEdge {
                        a: i,
                        b: j,
                        weight: w,
                    });
                }
            }
        }
        QueryGraph { n, edges }
    }

    /// Number of vertices (atoms).
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The weighted edges.
    pub fn edges(&self) -> &[QueryGraphEdge] {
        &self.edges
    }

    /// Total weight of edges crossing a bipartition mask (`true` = side A).
    pub fn cut_weight(&self, mask: &[bool]) -> u64 {
        self.edges
            .iter()
            .filter(|e| mask[e.a] != mask[e.b])
            .map(|e| e.weight)
            .sum()
    }

    /// Is the vertex-induced subgraph on `side` connected? (Vertices with
    /// `mask[v] == side`.) Singleton and empty sides count as connected and
    /// not-connected respectively.
    pub fn side_connected(&self, mask: &[bool], side: bool) -> bool {
        let members: Vec<usize> = (0..self.n).filter(|&v| mask[v] == side).collect();
        if members.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![members[0]];
        seen[members[0]] = true;
        while let Some(v) = stack.pop() {
            for e in &self.edges {
                let next = if e.a == v && mask[e.b] == side {
                    Some(e.b)
                } else if e.b == v && mask[e.a] == side {
                    Some(e.a)
                } else {
                    None
                };
                if let Some(u) = next {
                    if !seen[u] {
                        seen[u] = true;
                        stack.push(u);
                    }
                }
            }
        }
        members.iter().all(|&v| seen[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use qoco_data::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("R1", &["x", "y"])
            .relation("R2", &["y", "z"])
            .relation("R3", &["z", "w"])
            .relation("R4", &["z", "v"])
            .build()
            .unwrap()
    }

    /// The Figure 2 example query:
    /// (x,y,z,w) :- R1(x,y), R2(y,z), R3(z,w), R4(z,v); z != x, w != x.
    fn fig2(s: &Arc<Schema>) -> ConjunctiveQuery {
        parse_query(
            s,
            "(x, y, z, w) :- R1(x, y), R2(y, z), R3(z, w), R4(z, v), z != x, w != x.",
        )
        .unwrap()
    }

    fn weight(g: &QueryGraph, a: usize, b: usize) -> u64 {
        g.edges()
            .iter()
            .find(|e| (e.a, e.b) == (a.min(b), a.max(b)))
            .map(|e| e.weight)
            .unwrap_or(0)
    }

    #[test]
    fn figure_2_weights() {
        let s = schema();
        let g = QueryGraph::build(&fig2(&s));
        assert_eq!(g.vertex_count(), 4);
        // R1–R2 share y, plus inequality z != x (x in R1, z in R2) → 2
        assert_eq!(weight(&g, 0, 1), 2);
        // R2–R3 share z → 1... plus w != x? w in R3, x not in R2 → not all
        // covered by the pair (x is in R1 only) → stays 1.
        assert_eq!(weight(&g, 1, 2), 1);
        // R3–R4 share z → 1
        assert_eq!(weight(&g, 2, 3), 1);
        // R2–R4 share z → 1
        assert_eq!(weight(&g, 1, 3), 1);
        // R1–R3: no shared var; both inequalities cover the pair
        // (w != x: w in R3, x in R1; z != x: z in R3, x in R1) → 2
        assert_eq!(weight(&g, 0, 2), 2);
        // R1–R4: no shared var; z != x has z not in R4? z IS in R4 (R4(z,v)) → 1
        assert_eq!(weight(&g, 0, 3), 1);
    }

    #[test]
    fn figure_2_min_cut_isolates_r4() {
        let s = schema();
        let g = QueryGraph::build(&fig2(&s));
        // The paper's Figure 2 (left) min-cut: {R4} vs {R1, R2, R3},
        // cutting edges R4–R2 (1), R4–R3 (1), R4–R1 (1) = 3?  Compare with
        // the alternative {R1,R2} vs {R3,R4}: edges R2–R3 (1), R1–R3 (1) = 2.
        // Our graph includes inequality-induced edges, so we just verify the
        // cut_weight arithmetic is consistent.
        let iso_r4 = [false, false, false, true];
        assert_eq!(
            g.cut_weight(&iso_r4),
            weight(&g, 0, 3) + weight(&g, 1, 3) + weight(&g, 2, 3)
        );
    }

    #[test]
    fn cut_weight_of_trivial_partition_is_zero() {
        let s = schema();
        let g = QueryGraph::build(&fig2(&s));
        assert_eq!(g.cut_weight(&[true, true, true, true]), 0);
    }

    #[test]
    fn connectivity_checks() {
        let s = schema();
        let g = QueryGraph::build(&fig2(&s));
        assert!(g.side_connected(&[true, true, false, false], true));
        assert!(g.side_connected(&[true, true, false, false], false));
        // Empty side is not connected.
        assert!(!g.side_connected(&[true, true, true, true], false));
    }

    #[test]
    fn disconnected_query_graph() {
        let s = Schema::builder()
            .relation("A", &["x"])
            .relation("B", &["y"])
            .build()
            .unwrap();
        let q = parse_query(&s, "(x, y) :- A(x), B(y)").unwrap();
        let g = QueryGraph::build(&q);
        assert!(g.edges().is_empty());
        // A side holding both vertices is not connected.
        assert!(!g.side_connected(&[true, true], true));
    }

    #[test]
    fn constant_rhs_inequality_does_not_create_edges() {
        let s = Schema::builder()
            .relation("A", &["x"])
            .relation("B", &["x"])
            .build()
            .unwrap();
        let q = parse_query(&s, r#"(x) :- A(x), B(x), x != "c""#).unwrap();
        let g = QueryGraph::build(&q);
        // One edge (shared x), weight 1 — the constant inequality adds no
        // pairwise structure.
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].weight, 1);
    }
}
