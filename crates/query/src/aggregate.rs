//! The count-threshold aggregate fragment.
//!
//! The paper's first future-work item (Section 9) is views with aggregates,
//! noting that "aggregates introduce significant complications". One
//! well-behaved fragment needs no new machinery at all: `COUNT(distinct
//! witness) ≥ k` conditions desugar into conjunctive queries with
//! inequalities — the paper's own Q1 ("won the World Cup *at least twice*")
//! is exactly the `k = 2` unfolding, two copies of the winning-game atom
//! with `d1 ≠ d2`. [`unfold_at_least`] performs that desugaring for any
//! body and threshold, so threshold views can be authored declaratively and
//! cleaned with the unchanged Algorithms 1–3.

use std::collections::BTreeMap;

use crate::ast::{Atom, ConjunctiveQuery, Inequality, QueryError, Term, Var};

/// Desugar "`head` such that at least `k` *distinct* witnesses of `body`
/// exist, where distinctness is measured on `distinct_var`":
/// the body is cloned `k` times with non-head variables renamed per copy,
/// and the copies of `distinct_var` are made pairwise unequal.
///
/// `unfold_at_least(Q, d, 2)` on `Q(x) :- Games(d, x, y, "Final", u)`
/// yields the paper's Q1 (up to variable names):
/// `(x) :- Games(d_1, x, …), Games(d_2, x, …), d_1 ≠ d_2`.
///
/// # Errors
/// * [`QueryError::UnboundInequalityVar`] if `distinct_var` does not occur
///   in the body;
/// * [`QueryError::EmptyBody`] if `k == 0` (an "at least zero" view is the
///   constant-true query, which the CQ language cannot express).
pub fn unfold_at_least(
    q: &ConjunctiveQuery,
    distinct_var: &Var,
    k: usize,
) -> Result<ConjunctiveQuery, QueryError> {
    if k == 0 {
        return Err(QueryError::EmptyBody);
    }
    if !q.vars().contains(distinct_var) {
        return Err(QueryError::UnboundInequalityVar(
            distinct_var.name().to_string(),
        ));
    }
    let head_vars: std::collections::BTreeSet<Var> = q.head_vars().into_iter().collect();
    if head_vars.contains(distinct_var) {
        // a head variable is fixed per answer; k ≥ 2 distinct copies could
        // never agree with the head
        return Err(QueryError::UnsafeHeadVar(distinct_var.name().to_string()));
    }

    let mut atoms = Vec::with_capacity(q.atoms().len() * k);
    let mut inequalities = Vec::new();
    let mut distinct_copies: Vec<Var> = Vec::with_capacity(k);

    for copy in 1..=k {
        // rename every non-head variable of this copy
        let mut rename: BTreeMap<Var, Var> = BTreeMap::new();
        for v in q.vars() {
            if !head_vars.contains(&v) {
                rename.insert(v.clone(), Var::new(format!("{}_{copy}", v.name())));
            }
        }
        let map_term = |t: &Term| -> Term {
            match t {
                Term::Const(_) => t.clone(),
                Term::Var(v) => Term::Var(rename.get(v).cloned().unwrap_or_else(|| v.clone())),
            }
        };
        for a in q.atoms() {
            atoms.push(Atom::new(a.rel, a.terms.iter().map(map_term).collect()));
        }
        for e in q.inequalities() {
            let lhs = match rename.get(&e.lhs) {
                Some(r) => r.clone(),
                None => e.lhs.clone(),
            };
            inequalities.push(Inequality::new(lhs, map_term(&e.rhs)));
        }
        distinct_copies.push(
            rename
                .get(distinct_var)
                .cloned()
                .unwrap_or_else(|| distinct_var.clone()),
        );
    }
    // pairwise distinctness across copies
    for i in 0..k {
        for j in (i + 1)..k {
            inequalities.push(Inequality::new(
                distinct_copies[i].clone(),
                Term::Var(distinct_copies[j].clone()),
            ));
        }
    }
    ConjunctiveQuery::new(
        q.schema().clone(),
        format!("{}≥{k}", q.name()),
        q.head().to_vec(),
        atoms,
        inequalities,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use qoco_data::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap()
    }

    /// The single-witness template: teams with a final win.
    fn template(s: &Arc<Schema>) -> ConjunctiveQuery {
        parse_query(s, r#"W(x) :- Games(d, x, y, "Final", u), Teams(x, "EU")"#).unwrap()
    }

    #[test]
    fn k2_unfolding_matches_the_papers_q1_shape() {
        let s = schema();
        let q = template(&s);
        let q2 = unfold_at_least(&q, &Var::new("d"), 2).unwrap();
        // 2 copies of 2 atoms, one pairwise inequality
        assert_eq!(q2.atoms().len(), 4);
        assert_eq!(q2.inequalities().len(), 1);
        assert_eq!(q2.head(), q.head());
        assert_eq!(q2.name(), "W≥2");
        // the two Games copies share x (head var) but have distinct dates
        let e = &q2.inequalities()[0];
        assert_eq!(e.lhs.name(), "d_1");
        assert_eq!(e.rhs, Term::var("d_2"));
    }

    #[test]
    fn k3_has_three_pairwise_inequalities() {
        let s = schema();
        let q = template(&s);
        let q3 = unfold_at_least(&q, &Var::new("d"), 3).unwrap();
        assert_eq!(q3.atoms().len(), 6);
        assert_eq!(q3.inequalities().len(), 3); // C(3,2)
    }

    #[test]
    fn k1_is_a_pure_renaming() {
        let s = schema();
        let q = template(&s);
        let q1 = unfold_at_least(&q, &Var::new("d"), 1).unwrap();
        assert_eq!(q1.atoms().len(), q.atoms().len());
        assert!(q1.inequalities().is_empty());
        // semantically equivalent to the template
        assert!(crate::homomorphism::equivalent(&q, &q1));
    }

    #[test]
    fn k0_is_rejected() {
        let s = schema();
        let q = template(&s);
        assert!(matches!(
            unfold_at_least(&q, &Var::new("d"), 0),
            Err(QueryError::EmptyBody)
        ));
    }

    #[test]
    fn unknown_distinct_var_is_rejected() {
        let s = schema();
        let q = template(&s);
        assert!(matches!(
            unfold_at_least(&q, &Var::new("nope"), 2),
            Err(QueryError::UnboundInequalityVar(_))
        ));
    }

    #[test]
    fn head_var_as_distinct_var_is_rejected() {
        let s = schema();
        let q = template(&s);
        assert!(unfold_at_least(&q, &Var::new("x"), 2).is_err());
    }
}
