//! The conjunctive-query AST (paper Section 2).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use qoco_data::{RelId, Schema, Value};

/// A query variable. Cheap to clone (shared string).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Create a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable from `V`.
    Var(Var),
    /// A constant from the vocabulary `C`.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::new(name))
    }

    /// Shorthand for a constant term.
    pub fn cons(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// True if this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

/// A relational atom `R(ū)` in a query body.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument terms, one per attribute.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Create an atom.
    pub fn new(rel: RelId, terms: Vec<Term>) -> Self {
        Atom { rel, terms }
    }

    /// The distinct variables appearing in this atom, in order of first
    /// occurrence.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// True if every term is a constant (a *ground* atom).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(", self.rel)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, ")")
    }
}

/// An inequality `l ≠ r` where `l` is a variable and `r` is a variable or a
/// constant, both occurring in the query body (paper Section 2).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Inequality {
    /// The left-hand variable.
    pub lhs: Var,
    /// The right-hand term.
    pub rhs: Term,
}

impl Inequality {
    /// Create an inequality.
    pub fn new(lhs: Var, rhs: Term) -> Self {
        Inequality { lhs, rhs }
    }

    /// The distinct variables mentioned by the inequality.
    pub fn vars(&self) -> Vec<Var> {
        let mut v = vec![self.lhs.clone()];
        if let Term::Var(r) = &self.rhs {
            if *r != self.lhs {
                v.push(r.clone());
            }
        }
        v
    }
}

impl fmt::Debug for Inequality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} != {:?}", self.lhs, self.rhs)
    }
}

/// Errors raised while constructing or transforming queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A head variable does not occur in any body atom (unsafe query).
    UnsafeHeadVar(String),
    /// An inequality mentions a variable not bound by any atom.
    UnboundInequalityVar(String),
    /// An atom's arity does not match its relation's declared arity.
    AtomArity {
        /// Relation name.
        rel: String,
        /// Declared arity.
        expected: usize,
        /// Number of terms in the atom.
        got: usize,
    },
    /// The query body is empty.
    EmptyBody,
    /// A substitution made an inequality ground and false
    /// (e.g. embedding an answer produced `c ≠ c`).
    FalseInequality(String),
    /// The answer tuple's arity does not match the query head.
    AnswerArity {
        /// Head width.
        expected: usize,
        /// Answer width.
        got: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsafeHeadVar(v) => {
                write!(f, "head variable `{v}` does not occur in the body")
            }
            QueryError::UnboundInequalityVar(v) => {
                write!(f, "inequality variable `{v}` does not occur in any atom")
            }
            QueryError::AtomArity { rel, expected, got } => {
                write!(
                    f,
                    "atom over `{rel}` has {got} terms but arity is {expected}"
                )
            }
            QueryError::EmptyBody => write!(f, "query body has no relational atoms"),
            QueryError::FalseInequality(e) => {
                write!(f, "substitution violates inequality {e}")
            }
            QueryError::AnswerArity { expected, got } => {
                write!(f, "answer has {got} values but head has {expected} terms")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive query with inequalities over a fixed schema.
///
/// Invariants (checked at construction):
/// * the body has at least one relational atom;
/// * every atom matches its relation's arity;
/// * every head variable occurs in some body atom (safety);
/// * every inequality variable occurs in some body atom.
#[derive(Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    schema: Arc<Schema>,
    name: String,
    head: Vec<Term>,
    atoms: Vec<Atom>,
    inequalities: Vec<Inequality>,
}

impl ConjunctiveQuery {
    /// Construct and validate a query.
    pub fn new(
        schema: Arc<Schema>,
        name: impl Into<String>,
        head: Vec<Term>,
        atoms: Vec<Atom>,
        inequalities: Vec<Inequality>,
    ) -> Result<Self, QueryError> {
        if atoms.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        for a in &atoms {
            let decl = schema.relation(a.rel).expect("atom over schema relation");
            if decl.arity() != a.terms.len() {
                return Err(QueryError::AtomArity {
                    rel: decl.name().to_string(),
                    expected: decl.arity(),
                    got: a.terms.len(),
                });
            }
        }
        let body_vars: BTreeSet<Var> = atoms.iter().flat_map(|a| a.vars()).collect();
        for t in &head {
            if let Term::Var(v) = t {
                if !body_vars.contains(v) {
                    return Err(QueryError::UnsafeHeadVar(v.name().to_string()));
                }
            }
        }
        for e in &inequalities {
            for v in e.vars() {
                if !body_vars.contains(&v) {
                    return Err(QueryError::UnboundInequalityVar(v.name().to_string()));
                }
            }
        }
        Ok(ConjunctiveQuery {
            schema,
            name: name.into(),
            head,
            atoms,
            inequalities,
        })
    }

    /// The schema the query is over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The query's label (used in reports and figures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the query (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The head terms `ū₀`.
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The body inequalities.
    pub fn inequalities(&self) -> &[Inequality] {
        &self.inequalities
    }

    /// `Var(Q)`: all distinct variables of the body, in order of first
    /// occurrence.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in a.vars() {
                if seen.insert(v.clone()) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// `Const(Q)`: all distinct constants of the body.
    pub fn consts(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            for t in &a.terms {
                if let Term::Const(c) = t {
                    out.insert(c.clone());
                }
            }
        }
        for e in &self.inequalities {
            if let Term::Const(c) = &e.rhs {
                out.insert(c.clone());
            }
        }
        out
    }

    /// The distinct head variables in head order.
    pub fn head_vars(&self) -> Vec<Var> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.head {
            if let Term::Var(v) = t {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Substitute variables by constants per `bind`, dropping inequalities
    /// that become ground-and-true and erroring on ground-and-false ones.
    /// The head of the result is recomputed as *all remaining variables* of
    /// the body (the "no projection" convention of Q|t and subqueries,
    /// Section 5.1).
    pub fn substitute(
        &self,
        bind: &dyn Fn(&Var) -> Option<Value>,
    ) -> Result<ConjunctiveQuery, QueryError> {
        let sub_term = |t: &Term| -> Term {
            match t {
                Term::Var(v) => match bind(v) {
                    Some(c) => Term::Const(c),
                    None => t.clone(),
                },
                Term::Const(_) => t.clone(),
            }
        };
        let atoms: Vec<Atom> = self
            .atoms
            .iter()
            .map(|a| Atom::new(a.rel, a.terms.iter().map(sub_term).collect()))
            .collect();
        let mut inequalities = Vec::new();
        for e in &self.inequalities {
            let lhs = sub_term(&Term::Var(e.lhs.clone()));
            let rhs = sub_term(&e.rhs);
            match (&lhs, &rhs) {
                (Term::Const(a), Term::Const(b)) => {
                    if a == b {
                        return Err(QueryError::FalseInequality(format!("{e:?}")));
                    }
                    // ground and true: drop it
                }
                (Term::Var(l), r) => {
                    inequalities.push(Inequality::new(l.clone(), r.clone()));
                }
                (Term::Const(c), Term::Var(r)) => {
                    // normalize so the variable is on the left
                    inequalities.push(Inequality::new(r.clone(), Term::Const(c.clone())));
                }
            }
        }
        let head: Vec<Term> = {
            let mut seen = BTreeSet::new();
            let mut out = Vec::new();
            for a in &atoms {
                for v in a.vars() {
                    if seen.insert(v.clone()) {
                        out.push(Term::Var(v));
                    }
                }
            }
            out
        };
        ConjunctiveQuery::new(
            self.schema.clone(),
            format!("{}|σ", self.name),
            head,
            atoms,
            inequalities,
        )
    }

    /// Pretty-print with schema relation names (datalog style).
    pub fn display(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.name);
        s.push('(');
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{t:?}"));
        }
        s.push_str(") :- ");
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(self.schema.rel_name(a.rel));
            s.push('(');
            for (j, t) in a.terms.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{t:?}"));
            }
            s.push(')');
        }
        for e in &self.inequalities {
            s.push_str(&format!(", {} != {:?}", e.lhs, e.rhs));
        }
        s.push('.');
        s
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::Schema;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap()
    }

    /// The paper's Q1: European teams that won the World Cup at least twice.
    fn q1(s: &Arc<Schema>) -> ConjunctiveQuery {
        let games = s.rel_id("Games").unwrap();
        let teams = s.rel_id("Teams").unwrap();
        ConjunctiveQuery::new(
            s.clone(),
            "Q1",
            vec![Term::var("x")],
            vec![
                Atom::new(
                    games,
                    vec![
                        Term::var("d1"),
                        Term::var("x"),
                        Term::var("y"),
                        Term::cons("Final"),
                        Term::var("u1"),
                    ],
                ),
                Atom::new(
                    games,
                    vec![
                        Term::var("d2"),
                        Term::var("x"),
                        Term::var("z"),
                        Term::cons("Final"),
                        Term::var("u2"),
                    ],
                ),
                Atom::new(teams, vec![Term::var("x"), Term::cons("EU")]),
            ],
            vec![Inequality::new(Var::new("d1"), Term::var("d2"))],
        )
        .unwrap()
    }

    #[test]
    fn vars_and_consts_match_example_2_1() {
        let s = schema();
        let q = q1(&s);
        let vars = q.vars();
        let names: Vec<&str> = vars.iter().map(|v| v.name()).collect();
        // Example 2.1: Var(Q1) = {d1, d2, x, y, u1, u2} (plus z in our body)
        for expected in ["d1", "d2", "x", "y", "u1", "u2", "z"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        let consts = q.consts();
        assert!(consts.contains(&Value::text("Final")));
        assert!(consts.contains(&Value::text("EU")));
        assert_eq!(consts.len(), 2);
    }

    #[test]
    fn unsafe_head_is_rejected() {
        let s = schema();
        let teams = s.rel_id("Teams").unwrap();
        let err = ConjunctiveQuery::new(
            s.clone(),
            "bad",
            vec![Term::var("nope")],
            vec![Atom::new(teams, vec![Term::var("x"), Term::var("y")])],
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::UnsafeHeadVar("nope".into()));
    }

    #[test]
    fn unbound_inequality_is_rejected() {
        let s = schema();
        let teams = s.rel_id("Teams").unwrap();
        let err = ConjunctiveQuery::new(
            s.clone(),
            "bad",
            vec![Term::var("x")],
            vec![Atom::new(teams, vec![Term::var("x"), Term::var("y")])],
            vec![Inequality::new(Var::new("w"), Term::var("x"))],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::UnboundInequalityVar("w".into()));
    }

    #[test]
    fn empty_body_is_rejected() {
        let s = schema();
        let err = ConjunctiveQuery::new(s, "bad", vec![], vec![], vec![]).unwrap_err();
        assert_eq!(err, QueryError::EmptyBody);
    }

    #[test]
    fn wrong_arity_atom_is_rejected() {
        let s = schema();
        let teams = s.rel_id("Teams").unwrap();
        let err = ConjunctiveQuery::new(
            s.clone(),
            "bad",
            vec![],
            vec![Atom::new(teams, vec![Term::var("x")])],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            QueryError::AtomArity {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn substitute_binds_and_drops_true_inequalities() {
        let s = schema();
        let q = q1(&s);
        let q2 = q
            .substitute(&|v: &Var| match v.name() {
                "d1" => Some(Value::text("13.07.14")),
                "d2" => Some(Value::text("08.07.90")),
                _ => None,
            })
            .unwrap();
        // d1 != d2 became ground-and-true, so it is dropped.
        assert!(q2.inequalities().is_empty());
        // x remains a variable in the new head.
        assert!(q2.head_vars().iter().any(|v| v.name() == "x"));
    }

    #[test]
    fn substitute_rejects_false_inequality() {
        let s = schema();
        let q = q1(&s);
        let err = q
            .substitute(&|v: &Var| match v.name() {
                "d1" | "d2" => Some(Value::text("same")),
                _ => None,
            })
            .unwrap_err();
        assert!(matches!(err, QueryError::FalseInequality(_)));
    }

    #[test]
    fn substitute_normalizes_const_on_rhs() {
        let s = schema();
        let q = q1(&s);
        // bind d1 only: inequality becomes d2 != "x-date" with var on the left
        let q2 = q
            .substitute(&|v: &Var| (v.name() == "d1").then(|| Value::text("13.07.14")))
            .unwrap();
        assert_eq!(q2.inequalities().len(), 1);
        let e = &q2.inequalities()[0];
        assert_eq!(e.lhs.name(), "d2");
        assert_eq!(e.rhs, Term::cons("13.07.14"));
    }

    #[test]
    fn ground_atom_detection() {
        let s = schema();
        let teams = s.rel_id("Teams").unwrap();
        assert!(Atom::new(teams, vec![Term::cons("ITA"), Term::cons("EU")]).is_ground());
        assert!(!Atom::new(teams, vec![Term::var("x"), Term::cons("EU")]).is_ground());
    }

    #[test]
    fn display_is_datalog_like() {
        let s = schema();
        let q = q1(&s);
        let d = q.display();
        assert!(d.starts_with("Q1(x)"), "{d}");
        assert!(d.contains("Games("));
        assert!(d.contains("d1 != d2"), "{d}");
    }

    #[test]
    fn head_vars_dedup() {
        let s = schema();
        let teams = s.rel_id("Teams").unwrap();
        let q = ConjunctiveQuery::new(
            s.clone(),
            "q",
            vec![Term::var("x"), Term::var("x")],
            vec![Atom::new(teams, vec![Term::var("x"), Term::var("y")])],
            vec![],
        )
        .unwrap();
        assert_eq!(q.head_vars().len(), 1);
        assert_eq!(q.head().len(), 2);
    }
}
