//! Subqueries (Definition 5.3), query splitting, and answer embedding `Q|t`
//! (Section 5.1).
//!
//! Splitting a query decomposes its body atoms into two groups, each of which
//! becomes a subquery whose head contains *all* of its variables (no
//! projection). An inequality is kept by a subquery iff all of its variables
//! occur in that subquery — inequalities straddling the cut are lost, which
//! is exactly the effect the paper discusses for the WhyNot?-based split in
//! Figure 2.

use std::collections::BTreeSet;
use std::fmt;

use qoco_data::Value;

use crate::ast::{Atom, ConjunctiveQuery, Inequality, QueryError, Term, Var};

/// Errors from query splitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitError {
    /// A split must put at least one atom on each side.
    EmptySide,
    /// The partition mask length differs from the number of atoms.
    BadMask {
        /// Number of atoms in the query.
        atoms: usize,
        /// Length of the supplied mask.
        mask: usize,
    },
    /// Rebuilding a subquery failed validation (should not happen for
    /// well-formed inputs).
    Invalid(QueryError),
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::EmptySide => write!(f, "split leaves one side with no atoms"),
            SplitError::BadMask { atoms, mask } => {
                write!(f, "partition mask has {mask} entries for {atoms} atoms")
            }
            SplitError::Invalid(e) => write!(f, "invalid subquery: {e}"),
        }
    }
}

impl std::error::Error for SplitError {}

impl From<QueryError> for SplitError {
    fn from(e: QueryError) -> Self {
        SplitError::Invalid(e)
    }
}

/// Is `sub` a subquery of `q` per Definition 5.3? (Its atoms are a subset of
/// `q`'s atoms and its inequalities a subset of `q`'s inequalities.)
pub fn is_subquery(sub: &ConjunctiveQuery, q: &ConjunctiveQuery) -> bool {
    sub.atoms().iter().all(|a| q.atoms().contains(a))
        && sub
            .inequalities()
            .iter()
            .all(|e| q.inequalities().contains(e))
}

/// Build a subquery from a subset of `q`'s atoms. The head is all variables
/// of the kept atoms (no projection); inequalities are kept iff all their
/// variables are covered.
fn project_subquery(
    q: &ConjunctiveQuery,
    keep: &[usize],
    name: &str,
) -> Result<ConjunctiveQuery, SplitError> {
    let atoms: Vec<Atom> = keep.iter().map(|&i| q.atoms()[i].clone()).collect();
    if atoms.is_empty() {
        return Err(SplitError::EmptySide);
    }
    let vars: BTreeSet<Var> = atoms.iter().flat_map(|a| a.vars()).collect();
    let inequalities: Vec<Inequality> = q
        .inequalities()
        .iter()
        .filter(|e| e.vars().iter().all(|v| vars.contains(v)))
        .cloned()
        .collect();
    // head = all variables, in first-occurrence order
    let mut seen = BTreeSet::new();
    let mut head = Vec::new();
    for a in &atoms {
        for v in a.vars() {
            if seen.insert(v.clone()) {
                head.push(Term::Var(v));
            }
        }
    }
    ConjunctiveQuery::new(q.schema().clone(), name, head, atoms, inequalities)
        .map_err(SplitError::from)
}

/// Build the subquery of `q` induced by the atom indexes `keep` (all
/// variables in the head, inequalities kept when fully covered). Used by the
/// why-not analysis to test joint satisfiability of atom subsets.
pub fn split_subset(q: &ConjunctiveQuery, keep: &[usize]) -> Result<ConjunctiveQuery, SplitError> {
    if keep.iter().any(|&i| i >= q.atoms().len()) {
        return Err(SplitError::BadMask {
            atoms: q.atoms().len(),
            mask: keep.len(),
        });
    }
    project_subquery(q, keep, &format!("{}⊆", q.name()))
}

/// Split `q` into two subqueries according to a boolean mask over its atoms
/// (`true` → first subquery). Every atom lands in exactly one side; each
/// side must be non-empty.
pub fn split_by_atom_partition(
    q: &ConjunctiveQuery,
    mask: &[bool],
) -> Result<(ConjunctiveQuery, ConjunctiveQuery), SplitError> {
    if mask.len() != q.atoms().len() {
        return Err(SplitError::BadMask {
            atoms: q.atoms().len(),
            mask: mask.len(),
        });
    }
    let left: Vec<usize> = (0..mask.len()).filter(|&i| mask[i]).collect();
    let right: Vec<usize> = (0..mask.len()).filter(|&i| !mask[i]).collect();
    if left.is_empty() || right.is_empty() {
        return Err(SplitError::EmptySide);
    }
    let l = project_subquery(q, &left, &format!("{}′", q.name()))?;
    let r = project_subquery(q, &right, &format!("{}″", q.name()))?;
    Ok((l, r))
}

/// Embed a (missing) answer `t` into `q`, producing `Q|t` (Section 5.1):
/// the body is `t(body(Q))` and the head consists of all variables that
/// remain in the body.
///
/// Errors if `t`'s arity differs from the head's, or if the embedding makes
/// an inequality ground and false (then `t` cannot be an answer of any
/// database).
pub fn embed_answer(q: &ConjunctiveQuery, t: &[Value]) -> Result<ConjunctiveQuery, QueryError> {
    if t.len() != q.head().len() {
        return Err(QueryError::AnswerArity {
            expected: q.head().len(),
            got: t.len(),
        });
    }
    // The unique partial assignment induced by t maps each head variable to
    // the corresponding value. If the same variable occurs twice in the head
    // with conflicting values, t cannot be an answer.
    let mut binding: Vec<(Var, Value)> = Vec::new();
    for (term, v) in q.head().iter().zip(t) {
        match term {
            Term::Var(var) => {
                if let Some((_, prev)) = binding.iter().find(|(b, _)| b == var) {
                    if prev != v {
                        return Err(QueryError::FalseInequality(format!(
                            "head variable {var} bound to both {prev} and {v}"
                        )));
                    }
                } else {
                    binding.push((var.clone(), v.clone()));
                }
            }
            Term::Const(c) => {
                if c != v {
                    return Err(QueryError::FalseInequality(format!(
                        "head constant {c} does not match answer value {v}"
                    )));
                }
            }
        }
    }
    let q_t = q.substitute(&|v: &Var| {
        binding
            .iter()
            .find(|(b, _)| b == v)
            .map(|(_, val)| val.clone())
    })?;
    Ok(q_t.with_name(format!("{}|{:?}", q.name(), t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use qoco_data::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap()
    }

    /// Q2 from the paper: European players who scored in a final.
    fn q2(s: &Arc<Schema>) -> ConjunctiveQuery {
        parse_query(
            s,
            r#"Q2(x) :- Players(x, y, z, w), Goals(x, d), Games(d, y, v, "Final", u), Teams(y, "EU")."#,
        )
        .unwrap()
    }

    #[test]
    fn embed_pirlo_matches_example_5_4() {
        let s = schema();
        let q = q2(&s);
        let q_t = embed_answer(&q, &[Value::text("Pirlo")]).unwrap();
        // Q2|t: (z,w,d,v,u,y) :- Players("Pirlo",y,z,w), Goals("Pirlo",d),
        //                        Games(d,y,v,"Final",u), Teams(y,"EU")
        assert_eq!(q_t.atoms().len(), 4);
        assert_eq!(q_t.atoms()[0].terms[0], Term::cons("Pirlo"));
        assert_eq!(q_t.atoms()[1].terms[0], Term::cons("Pirlo"));
        // head holds every remaining variable
        let hv = q_t.head_vars();
        let names: BTreeSet<&str> = hv.iter().map(|v| v.name()).collect();
        assert_eq!(names, ["y", "z", "w", "d", "v", "u"].into_iter().collect());
    }

    #[test]
    fn embed_checks_arity() {
        let s = schema();
        let q = q2(&s);
        let err = embed_answer(&q, &[Value::text("a"), Value::text("b")]).unwrap_err();
        assert_eq!(
            err,
            QueryError::AnswerArity {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn embed_detects_violated_inequality() {
        let s = schema();
        let q = parse_query(&s, r#"(x, y) :- Games(d, x, y, "Final", u), x != y."#).unwrap();
        let err = embed_answer(&q, &[Value::text("GER"), Value::text("GER")]).unwrap_err();
        assert!(matches!(err, QueryError::FalseInequality(_)));
    }

    #[test]
    fn embed_detects_conflicting_duplicate_head_vars() {
        let s = schema();
        let q = parse_query(&s, r#"(x, x) :- Teams(x, c)"#).unwrap();
        assert!(embed_answer(&q, &[Value::text("a"), Value::text("b")]).is_err());
        assert!(embed_answer(&q, &[Value::text("a"), Value::text("a")]).is_ok());
    }

    #[test]
    fn embed_checks_head_constants() {
        let s = schema();
        let q = parse_query(&s, r#"(x, "EU") :- Teams(x, "EU")"#).unwrap();
        assert!(embed_answer(&q, &[Value::text("ITA"), Value::text("EU")]).is_ok());
        assert!(embed_answer(&q, &[Value::text("ITA"), Value::text("SA")]).is_err());
    }

    #[test]
    fn split_example_5_4() {
        let s = schema();
        let q = q2(&s);
        let q_t = embed_answer(&q, &[Value::text("Pirlo")]).unwrap();
        // Split: {Players, Goals, Games} vs {Teams}
        let (q_prime, q_dprime) =
            split_by_atom_partition(&q_t, &[true, true, true, false]).unwrap();
        assert_eq!(q_prime.atoms().len(), 3);
        assert_eq!(q_dprime.atoms().len(), 1);
        // Q'' = (y) :- Teams(y, "EU")
        assert_eq!(q_dprime.head_vars().len(), 1);
        assert_eq!(q_dprime.head_vars()[0].name(), "y");
        assert!(is_subquery(&q_prime, &q_t));
        assert!(is_subquery(&q_dprime, &q_t));
    }

    #[test]
    fn split_keeps_inequalities_with_covered_vars() {
        let s = schema();
        let q = parse_query(
            &s,
            r#"(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        // Put both Games atoms on the left: d1 != d2 survives on the left.
        let (l, r) = split_by_atom_partition(&q, &[true, true, false]).unwrap();
        assert_eq!(l.inequalities().len(), 1);
        assert!(r.inequalities().is_empty());
        // Separate the Games atoms: the inequality is lost on both sides.
        let (l2, r2) = split_by_atom_partition(&q, &[true, false, true]).unwrap();
        assert!(l2.inequalities().is_empty());
        assert!(r2.inequalities().is_empty());
    }

    #[test]
    fn split_rejects_empty_sides() {
        let s = schema();
        let q = q2(&s);
        assert_eq!(
            split_by_atom_partition(&q, &[true, true, true, true]).unwrap_err(),
            SplitError::EmptySide
        );
        assert_eq!(
            split_by_atom_partition(&q, &[false, false, false, false]).unwrap_err(),
            SplitError::EmptySide
        );
    }

    #[test]
    fn split_rejects_bad_mask_length() {
        let s = schema();
        let q = q2(&s);
        assert_eq!(
            split_by_atom_partition(&q, &[true]).unwrap_err(),
            SplitError::BadMask { atoms: 4, mask: 1 }
        );
    }

    #[test]
    fn subquery_heads_have_no_projection() {
        let s = schema();
        let q = q2(&s);
        let (l, r) = split_by_atom_partition(&q, &[true, true, false, false]).unwrap();
        for sq in [&l, &r] {
            let body_vars: BTreeSet<Var> = sq.atoms().iter().flat_map(|a| a.vars()).collect();
            let head_vars: BTreeSet<Var> = sq.head_vars().into_iter().collect();
            assert_eq!(body_vars, head_vars);
        }
    }

    #[test]
    fn is_subquery_rejects_foreign_atoms() {
        let s = schema();
        let q = q2(&s);
        let other = parse_query(&s, r#"(x) :- Teams(x, "SA")"#).unwrap();
        assert!(!is_subquery(&other, &q));
    }
}
