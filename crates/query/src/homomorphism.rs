//! Query homomorphisms, containment and minimization.
//!
//! Classic conjunctive-query theory (Chandra–Merlin): `Q₂ ⊑ Q₁` iff there
//! is a homomorphism from `Q₁` to `Q₂` mapping head to head. QOCO uses
//! this substrate to recognize redundant disjuncts in union views and to
//! minimize queries before splitting (fewer atoms ⇒ fewer crowd tasks).
//!
//! With inequalities the classical theorem is no longer complete; we
//! implement the *sound* variant: a homomorphism must map every inequality
//! of the source onto a (syntactic) inequality of the target. Containment
//! verdicts are therefore `true` ⇒ really contained, while `false` may be
//! a false negative for queries with inequalities (documented per
//! function).

use std::collections::BTreeMap;

use qoco_data::Value;

use crate::ast::{ConjunctiveQuery, Inequality, Term, Var};

/// A variable mapping `Var(from) → Term` (constants map to themselves).
pub type Homomorphism = BTreeMap<Var, Term>;

fn apply(h: &Homomorphism, t: &Term) -> Term {
    match t {
        Term::Const(_) => t.clone(),
        Term::Var(v) => h.get(v).cloned().unwrap_or_else(|| t.clone()),
    }
}

/// Does `h` map inequality `e` of the source onto an inequality present in
/// `target_ineqs` (in either orientation), or onto two distinct constants?
fn inequality_preserved(h: &Homomorphism, e: &Inequality, target: &ConjunctiveQuery) -> bool {
    let lhs = apply(h, &Term::Var(e.lhs.clone()));
    let rhs = apply(h, &e.rhs);
    match (&lhs, &rhs) {
        (Term::Const(a), Term::Const(b)) => a != b,
        _ => target.inequalities().iter().any(|te| {
            let tl = Term::Var(te.lhs.clone());
            let tr = te.rhs.clone();
            (tl == lhs && tr == rhs) || (tl == rhs && tr == lhs)
        }),
    }
}

/// Search for a homomorphism `from → to`: every atom of `from` must map
/// (under a consistent variable mapping) onto an atom of `to`, the head of
/// `from` must map onto the head of `to`, and every inequality of `from`
/// must be preserved (see module docs).
pub fn find_homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<Homomorphism> {
    if from.head().len() != to.head().len() {
        return None;
    }
    let mut h = Homomorphism::new();
    // seed with the head condition
    for (ft, tt) in from.head().iter().zip(to.head()) {
        match ft {
            Term::Const(c) => {
                if Term::Const(c.clone()) != *tt {
                    return None;
                }
            }
            Term::Var(v) => match h.get(v) {
                Some(existing) => {
                    if existing != tt {
                        return None;
                    }
                }
                None => {
                    h.insert(v.clone(), tt.clone());
                }
            },
        }
    }
    search(from, to, 0, h)
}

fn search(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    atom_idx: usize,
    h: Homomorphism,
) -> Option<Homomorphism> {
    if atom_idx == from.atoms().len() {
        // all atoms mapped; check the inequalities
        let ok = from
            .inequalities()
            .iter()
            .all(|e| inequality_preserved(&h, e, to));
        return ok.then_some(h);
    }
    let atom = &from.atoms()[atom_idx];
    'target: for cand in to.atoms() {
        if cand.rel != atom.rel {
            continue;
        }
        let mut next = h.clone();
        for (ft, tt) in atom.terms.iter().zip(&cand.terms) {
            match ft {
                Term::Const(c) => {
                    if Term::Const(c.clone()) != *tt {
                        continue 'target;
                    }
                }
                Term::Var(v) => match next.get(v) {
                    Some(existing) => {
                        if existing != tt {
                            continue 'target;
                        }
                    }
                    None => {
                        next.insert(v.clone(), tt.clone());
                    }
                },
            }
        }
        if let Some(found) = search(from, to, atom_idx + 1, next) {
            return Some(found);
        }
    }
    None
}

/// Is `q2 ⊑ q1` (every answer of `q2` is an answer of `q1`, over every
/// database)? Sound always; complete for inequality-free queries
/// (Chandra–Merlin).
pub fn contains(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    find_homomorphism(q1, q2).is_some()
}

/// Are the queries equivalent (mutually containing)? Same soundness and
/// completeness caveats as [`contains`].
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    contains(q1, q2) && contains(q2, q1)
}

/// Minimize `q` by removing redundant atoms: an atom is redundant when the
/// query maps homomorphically into itself-without-that-atom. For
/// inequality-free queries this computes the core (the unique minimal
/// equivalent query); with inequalities it is a conservative reduction
/// (only provably safe removals happen).
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    loop {
        let mut shrunk = false;
        for skip in 0..current.atoms().len() {
            if current.atoms().len() == 1 {
                break;
            }
            let keep: Vec<usize> = (0..current.atoms().len()).filter(|&i| i != skip).collect();
            let atoms: Vec<_> = keep.iter().map(|&i| current.atoms()[i].clone()).collect();
            // candidate keeps the original head and all inequalities
            let Ok(candidate) = ConjunctiveQuery::new(
                current.schema().clone(),
                current.name(),
                current.head().to_vec(),
                atoms,
                current.inequalities().to_vec(),
            ) else {
                continue; // removing the atom would unbind head/ineq vars
            };
            // safe iff the full query maps into the candidate (then every
            // candidate answer is a full-query answer; the converse holds
            // because candidate ⊆-syntactically of the full query)
            if find_homomorphism(&current, &candidate).is_some() {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// The canonical-database answer check used by tests: evaluate `q1` on the
/// frozen body of `q2` (Chandra–Merlin's other direction). Exposed for
/// diagnostics.
pub fn canonical_constants(q: &ConjunctiveQuery) -> BTreeMap<Var, Value> {
    q.vars()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), Value::text(format!("⟨{}:{i}⟩", v.name()))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use qoco_data::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("E", &["a", "b"])
            .relation("L", &["a"])
            .build()
            .unwrap()
    }

    #[test]
    fn path2_contains_path3() {
        let s = schema();
        let p2 = parse_query(&s, "(x) :- E(x, y), E(y, z)").unwrap();
        let p3 = parse_query(&s, "(x) :- E(x, y), E(y, z), E(z, w)").unwrap();
        assert!(
            contains(&p2, &p3),
            "longer paths are special cases of shorter ones"
        );
        assert!(!contains(&p3, &p2), "a 2-path need not extend to a 3-path");
    }

    #[test]
    fn self_loop_is_contained_in_everything_pathy() {
        let s = schema();
        let p2 = parse_query(&s, "(x) :- E(x, y), E(y, z)").unwrap();
        let lp = parse_query(&s, "(x) :- E(x, x)").unwrap();
        assert!(contains(&p2, &lp));
        assert!(!contains(&lp, &p2));
    }

    #[test]
    fn constants_must_match() {
        let s = schema();
        let qa = parse_query(&s, r#"(x) :- E(x, "v0")"#).unwrap();
        let qb = parse_query(&s, r#"(x) :- E(x, "v1")"#).unwrap();
        assert!(!contains(&qa, &qb));
        assert!(contains(&qa, &qa));
    }

    #[test]
    fn head_must_be_preserved() {
        let s = schema();
        let qa = parse_query(&s, "(x) :- E(x, y)").unwrap();
        let qb = parse_query(&s, "(y) :- E(x, y)").unwrap();
        // source E(x,y) can map onto target E(x,y) only with x→x, but the
        // head of qa must land on qb's head y — impossible
        assert!(!contains(&qa, &qb));
    }

    #[test]
    fn inequalities_block_unsound_containment() {
        let s = schema();
        let strict = parse_query(&s, "(x, y) :- E(x, y), x != y").unwrap();
        let loose = parse_query(&s, "(x, y) :- E(x, y)").unwrap();
        // loose contains strict (dropping a filter only adds answers)
        assert!(contains(&loose, &strict));
        // strict does NOT contain loose
        assert!(!contains(&strict, &loose));
        // and strict is equivalent to itself
        assert!(equivalent(&strict, &strict));
    }

    #[test]
    fn minimize_removes_redundant_atom() {
        let s = schema();
        // E(x,y) ∧ E(x,z): the second atom is subsumed by the first
        let q = parse_query(&s, "(x) :- E(x, y), E(x, z)").unwrap();
        let m = minimize(&q);
        assert_eq!(m.atoms().len(), 1);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn minimize_keeps_a_real_join() {
        let s = schema();
        let q = parse_query(&s, "(x) :- E(x, y), L(y)").unwrap();
        let m = minimize(&q);
        assert_eq!(m.atoms().len(), 2, "both atoms are load-bearing");
    }

    #[test]
    fn minimize_collapses_duplicated_pattern() {
        let s = schema();
        // path-2 written twice with renamed variables
        let q = parse_query(&s, "(x) :- E(x, y), E(y, z), E(x, u), E(u, v)").unwrap();
        let m = minimize(&q);
        assert_eq!(m.atoms().len(), 2);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn minimize_respects_inequalities() {
        let s = schema();
        // E(x,y) is redundant (take y := z); E(x,z) must stay because the
        // inequality binds z
        let q = parse_query(&s, "(x) :- E(x, y), E(x, z), z != x").unwrap();
        let m = minimize(&q);
        assert_eq!(m.atoms().len(), 1, "{m:?}");
        assert_eq!(m.inequalities().len(), 1);
        // the surviving atom mentions z (the inequality variable)
        let vars = m.atoms()[0].vars();
        assert!(vars.iter().any(|v| v.name() == "z"), "{m:?}");
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn minimize_single_atom_is_identity() {
        let s = schema();
        let q = parse_query(&s, "(x) :- L(x)").unwrap();
        assert_eq!(minimize(&q).atoms(), q.atoms());
    }

    #[test]
    fn homomorphism_is_returned_and_consistent() {
        let s = schema();
        let p2 = parse_query(&s, "(x) :- E(x, y), E(y, z)").unwrap();
        let lp = parse_query(&s, "(x) :- E(x, x)").unwrap();
        let h = find_homomorphism(&p2, &lp).unwrap();
        // every variable of p2 maps to x
        for v in p2.vars() {
            assert_eq!(h.get(&v), Some(&Term::var("x")));
        }
    }

    #[test]
    fn canonical_constants_are_distinct() {
        let s = schema();
        let q = parse_query(&s, "(x) :- E(x, y), E(y, z)").unwrap();
        let c = canonical_constants(&q);
        let values: std::collections::BTreeSet<_> = c.values().collect();
        assert_eq!(values.len(), c.len());
    }
}
