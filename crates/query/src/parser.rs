//! A hand-written parser for datalog-style conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := [name] "(" terms? ")" ":-" lit ("," lit)* "."?
//! lit    := atom | ineq
//! atom   := relname "(" terms ")"
//! ineq   := term "!=" term
//! term   := IDENT            (variable)
//!         | "\"" chars "\""  (text constant)
//!         | INT              (integer constant)
//! ```
//!
//! Identifiers are variables; constants must be quoted or numeric, so
//! `Teams(x, "EU")` reads as the paper writes `Teams(x, EU)`.

use std::fmt;
use std::sync::Arc;

use qoco_data::{Schema, Value};

use crate::ast::{Atom, ConjunctiveQuery, Inequality, QueryError, Term, Var};

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexical error at byte offset.
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// The offending character.
        found: char,
    },
    /// Unexpected token.
    Unexpected {
        /// Byte offset of the token.
        at: usize,
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Input ended prematurely.
    Eof {
        /// What was expected.
        expected: &'static str,
    },
    /// A relation name is not in the schema.
    UnknownRelation(String),
    /// The parsed query failed semantic validation.
    Invalid(QueryError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex { at, found } => {
                write!(f, "unexpected character {found:?} at offset {at}")
            }
            ParseError::Unexpected {
                at,
                found,
                expected,
            } => {
                write!(f, "expected {expected} but found `{found}` at offset {at}")
            }
            ParseError::Eof { expected } => {
                write!(f, "unexpected end of input; expected {expected}")
            }
            ParseError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            ParseError::Invalid(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> Self {
        ParseError::Invalid(e)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Turnstile, // :-
    Neq,       // !=
    Dot,
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            '.' => {
                toks.push((i, Tok::Dot));
                i += 1;
            }
            ':' if bytes.get(i + 1) == Some(&'-') => {
                toks.push((i, Tok::Turnstile));
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                toks.push((i, Tok::Neq));
                i += 2;
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => {
                            return Err(ParseError::Eof {
                                expected: "closing quote",
                            })
                        }
                    }
                }
                toks.push((start, Tok::Str(s)));
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                let mut s = String::new();
                if c == '-' {
                    s.push('-');
                    i += 1;
                }
                while let Some(&d) = bytes.get(i) {
                    if d.is_ascii_digit() {
                        s.push(d);
                        i += 1;
                    } else {
                        break;
                    }
                }
                let n: i64 = s.parse().map_err(|_| ParseError::Lex {
                    at: start,
                    found: c,
                })?;
                toks.push((start, Tok::Int(n)));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                let mut s = String::new();
                while let Some(&d) = bytes.get(i) {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((start, Tok::Ident(s)));
            }
            other => {
                return Err(ParseError::Lex {
                    at: i,
                    found: other,
                })
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    schema: &'a Arc<Schema>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self, expected: &'static str) -> Result<(usize, Tok), ParseError> {
        let item = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or(ParseError::Eof { expected })?;
        self.pos += 1;
        Ok(item)
    }

    fn expect(&mut self, want: Tok, expected: &'static str) -> Result<(), ParseError> {
        let (at, got) = self.next(expected)?;
        if got == want {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                at,
                found: format!("{got:?}"),
                expected,
            })
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let (at, tok) = self.next("a term")?;
        match tok {
            Tok::Ident(name) => Ok(Term::Var(Var::new(name))),
            Tok::Str(s) => Ok(Term::Const(Value::text(s))),
            Tok::Int(n) => Ok(Term::Const(Value::Int(n))),
            other => Err(ParseError::Unexpected {
                at,
                found: format!("{other:?}"),
                expected: "a variable, string or integer",
            }),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>, ParseError> {
        self.expect(Tok::LParen, "`(`")?;
        let mut terms = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
            return Ok(terms);
        }
        loop {
            terms.push(self.term()?);
            match self.next("`,` or `)`")? {
                (_, Tok::Comma) => continue,
                (_, Tok::RParen) => break,
                (at, other) => {
                    return Err(ParseError::Unexpected {
                        at,
                        found: format!("{other:?}"),
                        expected: "`,` or `)`",
                    })
                }
            }
        }
        Ok(terms)
    }

    fn query(&mut self) -> Result<ConjunctiveQuery, ParseError> {
        // optional head name
        let name = if let Some(Tok::Ident(_)) = self.peek() {
            match self.next("head")? {
                (_, Tok::Ident(n)) => n,
                _ => unreachable!("peeked an identifier"),
            }
        } else {
            "Q".to_string()
        };
        let head = self.term_list()?;
        self.expect(Tok::Turnstile, "`:-`")?;

        let mut atoms = Vec::new();
        let mut inequalities = Vec::new();
        loop {
            // a literal: either `Rel(...)` or `term != term`
            match self.peek() {
                Some(Tok::Ident(_)) => {
                    // could be an atom (ident followed by `(`) or an
                    // inequality lhs (ident followed by `!=`)
                    let (at, tok) = self.next("a literal")?;
                    let ident = match tok {
                        Tok::Ident(s) => s,
                        _ => unreachable!("peeked an identifier"),
                    };
                    match self.peek() {
                        Some(Tok::LParen) => {
                            let rel = self
                                .schema
                                .rel_id(&ident)
                                .map_err(|_| ParseError::UnknownRelation(ident.clone()))?;
                            let terms = self.term_list()?;
                            atoms.push(Atom::new(rel, terms));
                        }
                        Some(Tok::Neq) => {
                            self.pos += 1;
                            let rhs = self.term()?;
                            inequalities.push(Inequality::new(Var::new(ident), rhs));
                        }
                        _ => {
                            return Err(ParseError::Unexpected {
                                at,
                                found: ident,
                                expected: "`(` (atom) or `!=` (inequality)",
                            })
                        }
                    }
                }
                Some(other) => {
                    let found = format!("{other:?}");
                    let at = self.toks[self.pos].0;
                    return Err(ParseError::Unexpected {
                        at,
                        found,
                        expected: "a literal",
                    });
                }
                None => {
                    return Err(ParseError::Eof {
                        expected: "a literal",
                    })
                }
            }
            match self.peek() {
                Some(Tok::Comma) => {
                    self.pos += 1;
                    continue;
                }
                Some(Tok::Dot) => {
                    self.pos += 1;
                    break;
                }
                None => break,
                Some(other) => {
                    let found = format!("{other:?}");
                    let at = self.toks[self.pos].0;
                    return Err(ParseError::Unexpected {
                        at,
                        found,
                        expected: "`,` or `.`",
                    });
                }
            }
        }
        if let Some(t) = self.peek() {
            let found = format!("{t:?}");
            let at = self.toks[self.pos].0;
            return Err(ParseError::Unexpected {
                at,
                found,
                expected: "end of input",
            });
        }
        ConjunctiveQuery::new(self.schema.clone(), name, head, atoms, inequalities)
            .map_err(ParseError::from)
    }
}

/// Parse a conjunctive query with inequalities against `schema`.
///
/// ```
/// use qoco_data::Schema;
/// use qoco_query::parse_query;
///
/// let schema = Schema::builder()
///     .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
///     .relation("Teams", &["country", "continent"])
///     .build()
///     .unwrap();
/// let q = parse_query(
///     &schema,
///     r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2),
///                Teams(x, "EU"), d1 != d2."#,
/// )
/// .unwrap();
/// assert_eq!(q.atoms().len(), 3);
/// assert_eq!(q.inequalities().len(), 1);
/// ```
pub fn parse_query(schema: &Arc<Schema>, input: &str) -> Result<ConjunctiveQuery, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
    };
    p.query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::Schema;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap()
    }

    #[test]
    fn parses_paper_q1() {
        let s = schema();
        let q = parse_query(
            &s,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        assert_eq!(q.name(), "Q1");
        assert_eq!(q.atoms().len(), 3);
        assert_eq!(q.inequalities().len(), 1);
        assert_eq!(q.head(), &[Term::var("x")]);
    }

    #[test]
    fn parses_paper_q2() {
        let s = schema();
        let q = parse_query(
            &s,
            r#"Q2(x) :- Players(x, y, z, w), Goals(x, d), Games(d, y, v, "Final", u), Teams(y, "EU")."#,
        )
        .unwrap();
        assert_eq!(q.atoms().len(), 4);
        assert!(q.inequalities().is_empty());
    }

    #[test]
    fn head_name_is_optional() {
        let s = schema();
        let q = parse_query(&s, r#"(x) :- Teams(x, "EU")"#).unwrap();
        assert_eq!(q.name(), "Q");
    }

    #[test]
    fn trailing_dot_is_optional() {
        let s = schema();
        assert!(parse_query(&s, r#"(x) :- Teams(x, "EU")."#).is_ok());
        assert!(parse_query(&s, r#"(x) :- Teams(x, "EU")"#).is_ok());
    }

    #[test]
    fn integer_constants() {
        let s = schema();
        let q = parse_query(&s, r#"(x) :- Players(x, y, 1979, w)"#).unwrap();
        assert_eq!(q.atoms()[0].terms[2], Term::cons(1979i64));
    }

    #[test]
    fn negative_integer_constants() {
        let s = schema();
        let q = parse_query(&s, r#"(x) :- Players(x, y, -1, w)"#).unwrap();
        assert_eq!(q.atoms()[0].terms[2], Term::cons(-1i64));
    }

    #[test]
    fn inequality_with_constant_rhs() {
        let s = schema();
        let q = parse_query(&s, r#"(x) :- Teams(x, c), c != "EU""#).unwrap();
        assert_eq!(q.inequalities()[0].rhs, Term::cons("EU"));
    }

    #[test]
    fn unknown_relation_is_reported() {
        let s = schema();
        let err = parse_query(&s, r#"(x) :- Nope(x)"#).unwrap_err();
        assert_eq!(err, ParseError::UnknownRelation("Nope".into()));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let s = schema();
        let err = parse_query(&s, r#"(x) :- Teams(x)"#).unwrap_err();
        assert!(matches!(
            err,
            ParseError::Invalid(QueryError::AtomArity { .. })
        ));
    }

    #[test]
    fn unsafe_head_is_reported() {
        let s = schema();
        let err = parse_query(&s, r#"(w) :- Teams(x, y)"#).unwrap_err();
        assert!(matches!(
            err,
            ParseError::Invalid(QueryError::UnsafeHeadVar(_))
        ));
    }

    #[test]
    fn unterminated_string_is_reported() {
        let s = schema();
        let err = parse_query(&s, r#"(x) :- Teams(x, "EU"#).unwrap_err();
        assert!(matches!(err, ParseError::Eof { .. }));
    }

    #[test]
    fn garbage_after_query_is_rejected() {
        let s = schema();
        let err = parse_query(&s, r#"(x) :- Teams(x, "EU"). extra"#).unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn lex_error_position() {
        let s = schema();
        let err = parse_query(&s, "(x) :- Teams(x, @)").unwrap_err();
        assert!(matches!(err, ParseError::Lex { found: '@', .. }));
    }

    #[test]
    fn missing_turnstile() {
        let s = schema();
        let err = parse_query(&s, r#"(x) Teams(x, "EU")"#).unwrap_err();
        assert!(matches!(
            err,
            ParseError::Unexpected {
                expected: "`:-`",
                ..
            }
        ));
    }

    #[test]
    fn display_round_trips_through_parser() {
        let s = schema();
        let q = parse_query(
            &s,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Teams(x, "EU"), d1 != x."#,
        )
        .unwrap();
        let q2 = parse_query(&s, &q.display()).unwrap();
        assert_eq!(q.atoms(), q2.atoms());
        assert_eq!(q.inequalities(), q2.inequalities());
        assert_eq!(q.head(), q2.head());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParseError::Unexpected {
            at: 3,
            found: "x".into(),
            expected: "`,`",
        };
        assert!(e.to_string().contains("offset 3"));
        assert!(ParseError::UnknownRelation("R".into())
            .to_string()
            .contains('R'));
    }
}
