//! Edmonds–Karp maximum flow and minimum s-t cut.
//!
//! The paper cites Edmonds & Karp \[20\] for the Min-Cut split. We implement
//! the classical BFS-augmenting-path algorithm over an adjacency-list
//! residual network with integer capacities; it runs in `O(V · E²)`, far
//! more than enough for query graphs with a handful of atoms, and is also
//! exercised by the test suite on larger random networks.

use std::collections::VecDeque;

/// A directed flow network with integer capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    n: usize,
    /// Edge list: `(to, capacity)`. Edge `i^1` is the residual twin of `i`.
    to: Vec<usize>,
    cap: Vec<i64>,
    /// adjacency: node → indexes into `to`/`cap`.
    adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// A network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Add a directed edge `u → v` with capacity `c ≥ 0`.
    ///
    /// # Panics
    /// Panics if `u`/`v` are out of range or `c < 0`.
    pub fn add_edge(&mut self, u: usize, v: usize, c: i64) {
        assert!(u < self.n && v < self.n, "edge endpoints out of range");
        assert!(c >= 0, "capacity must be non-negative");
        self.adj[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(c);
        self.adj[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(0);
    }

    /// Add an undirected edge with capacity `c` in both directions.
    pub fn add_undirected_edge(&mut self, u: usize, v: usize, c: i64) {
        assert!(u < self.n && v < self.n, "edge endpoints out of range");
        assert!(c >= 0, "capacity must be non-negative");
        self.adj[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(c);
        self.adj[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(c);
    }

    /// BFS over positive-residual edges; returns parent-edge indexes or
    /// `None` if `t` unreachable.
    fn bfs(&self, s: usize, t: usize) -> Option<Vec<usize>> {
        let mut parent_edge = vec![usize::MAX; self.n];
        let mut seen = vec![false; self.n];
        seen[s] = true;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e];
                if !seen[v] && self.cap[e] > 0 {
                    seen[v] = true;
                    parent_edge[v] = e;
                    if v == t {
                        return Some(parent_edge);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// Nodes reachable from `s` in the residual network (the source side of
    /// the min cut after `run`).
    fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        seen[s] = true;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &e in &self.adj[u] {
                let v = self.to[e];
                if !seen[v] && self.cap[e] > 0 {
                    seen[v] = true;
                    q.push_back(v);
                }
            }
        }
        seen
    }

    fn run(&mut self, s: usize, t: usize) -> i64 {
        assert!(s < self.n && t < self.n, "terminals out of range");
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0i64;
        while let Some(parent_edge) = self.bfs(s, t) {
            // bottleneck along the path
            let mut bottleneck = i64::MAX;
            let mut v = t;
            while v != s {
                let e = parent_edge[v];
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            // apply
            let mut v = t;
            while v != s {
                let e = parent_edge[v];
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            flow += bottleneck;
        }
        flow
    }
}

/// Maximum flow from `s` to `t` (consumes a copy of the network's
/// capacities; the input is unchanged).
pub fn max_flow(net: &FlowNetwork, s: usize, t: usize) -> i64 {
    net.clone().run(s, t)
}

/// Minimum s-t cut: returns `(cut_value, side_mask)` where `side_mask[v]`
/// is `true` iff `v` is on the source side.
pub fn min_st_cut(net: &FlowNetwork, s: usize, t: usize) -> (i64, Vec<bool>) {
    let mut residual = net.clone();
    let value = residual.run(s, t);
    (value, residual.residual_reachable(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic CLRS example network.
    fn clrs() -> FlowNetwork {
        let mut g = FlowNetwork::new(6);
        g.add_edge(0, 1, 16);
        g.add_edge(0, 2, 13);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 1, 4);
        g.add_edge(1, 3, 12);
        g.add_edge(3, 2, 9);
        g.add_edge(2, 4, 14);
        g.add_edge(4, 3, 7);
        g.add_edge(3, 5, 20);
        g.add_edge(4, 5, 4);
        g
    }

    #[test]
    fn clrs_max_flow_is_23() {
        assert_eq!(max_flow(&clrs(), 0, 5), 23);
    }

    #[test]
    fn min_cut_value_equals_max_flow() {
        let g = clrs();
        let (value, mask) = min_st_cut(&g, 0, 5);
        assert_eq!(value, 23);
        assert!(mask[0]);
        assert!(!mask[5]);
        // cut capacity across the mask equals the flow value
        let mut cut = 0i64;
        for u in 0..g.n {
            for &e in &g.adj[u] {
                // only count forward (even-index) edges
                if e % 2 == 0 && mask[u] && !mask[g.to[e]] {
                    cut += g.cap[e];
                }
            }
        }
        assert_eq!(cut, 23);
    }

    #[test]
    fn disconnected_terminals_have_zero_flow() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(2, 3, 5);
        assert_eq!(max_flow(&g, 0, 3), 0);
        let (v, mask) = min_st_cut(&g, 0, 3);
        assert_eq!(v, 0);
        assert!(mask[0] && mask[1]);
        assert!(!mask[2] && !mask[3]);
    }

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 7);
        assert_eq!(max_flow(&g, 0, 1), 7);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 3, 3);
        g.add_edge(0, 2, 4);
        g.add_edge(2, 3, 4);
        assert_eq!(max_flow(&g, 0, 3), 7);
    }

    #[test]
    fn bottleneck_limits_flow() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 100);
        g.add_edge(1, 2, 1);
        assert_eq!(max_flow(&g, 0, 2), 1);
    }

    #[test]
    fn undirected_edges_carry_flow_both_ways() {
        let mut g = FlowNetwork::new(3);
        g.add_undirected_edge(0, 1, 5);
        g.add_undirected_edge(1, 2, 5);
        assert_eq!(max_flow(&g, 0, 2), 5);
        assert_eq!(max_flow(&g, 2, 0), 5);
    }

    #[test]
    fn zigzag_residual_path_is_used() {
        // Flow must route back over a used edge via the residual.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 1, 1);
        g.add_edge(1, 2, 0);
        g.add_edge(2, 3, 1);
        assert_eq!(max_flow(&g, 0, 3), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        FlowNetwork::new(2).add_edge(0, 5, 1);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_terminals_panic() {
        let g = FlowNetwork::new(2);
        let _ = max_flow(&g, 1, 1);
    }
}
