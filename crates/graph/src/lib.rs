//! # qoco-graph — graph algorithms for QOCO
//!
//! The Min-Cut query-split strategy (paper Section 5.2, citing Edmonds–Karp
//! \[20\]) cuts the weighted *query graph* into two connected halves. This
//! crate provides the two classical algorithms that power it, built from
//! scratch:
//!
//! * [`maxflow`] — Edmonds–Karp maximum flow / minimum s-t cut;
//! * [`mincut`] — Stoer–Wagner global minimum cut, which is what a query
//!   split actually needs (no distinguished source/sink).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod maxflow;
pub mod mincut;

pub use maxflow::{max_flow, min_st_cut, FlowNetwork};
pub use mincut::{global_min_cut, CutResult, WeightedGraph};
