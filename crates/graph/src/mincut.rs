//! Stoer–Wagner global minimum cut.
//!
//! The query-directed split (paper Section 5.2) partitions the query graph
//! into two halves minimizing the weight of cut edges — a *global* min-cut,
//! i.e. over all non-trivial bipartitions, with no distinguished terminals.
//! Stoer–Wagner computes it in `O(V³)` with simple arrays, which is ideal at
//! query-graph scale and robust at test scale.

/// An undirected weighted graph on `n` vertices (adjacency matrix).
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    n: usize,
    w: Vec<Vec<u64>>,
}

impl WeightedGraph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            n,
            w: vec![vec![0; n]; n],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Add `weight` to the undirected edge `{u, v}` (accumulates on
    /// repeated calls).
    ///
    /// # Panics
    /// Panics if `u == v` or either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: u64) {
        assert!(u < self.n && v < self.n, "edge endpoints out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        self.w[u][v] += weight;
        self.w[v][u] += weight;
    }

    /// The weight of edge `{u, v}` (0 if absent).
    pub fn weight(&self, u: usize, v: usize) -> u64 {
        self.w[u][v]
    }
}

/// The result of a global min-cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutResult {
    /// Total weight of edges crossing the cut.
    pub weight: u64,
    /// `side[v]` is `true` iff vertex `v` is in the first part. Both parts
    /// are non-empty.
    pub side: Vec<bool>,
}

/// Compute a global minimum cut of `g` with the Stoer–Wagner algorithm.
///
/// Returns `None` for graphs with fewer than two vertices (no non-trivial
/// bipartition exists). Disconnected graphs yield weight 0 with one
/// component on each side.
pub fn global_min_cut(g: &WeightedGraph) -> Option<CutResult> {
    let n = g.n;
    if n < 2 {
        return None;
    }
    // `groups[v]` = original vertices merged into the current super-vertex v.
    let mut groups: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut w = g.w.clone();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best: Option<(u64, Vec<usize>)> = None;

    while active.len() > 1 {
        // Minimum-cut-phase: maximum-adjacency ordering.
        let mut in_a = vec![false; n];
        let mut weights_to_a = vec![0u64; n];
        let first = active[0];
        in_a[first] = true;
        for &v in &active {
            if v != first {
                weights_to_a[v] = w[first][v];
            }
        }
        let mut prev = first;
        let mut last = first;
        for _ in 1..active.len() {
            // pick the most tightly connected remaining vertex
            let next = active
                .iter()
                .copied()
                .filter(|&v| !in_a[v])
                .max_by_key(|&v| weights_to_a[v])
                .expect("at least one inactive vertex remains");
            in_a[next] = true;
            prev = last;
            last = next;
            for &v in &active {
                if !in_a[v] {
                    weights_to_a[v] += w[next][v];
                }
            }
        }
        // cut-of-the-phase: `last` alone vs the rest
        let phase_weight = weights_to_a[last];
        let candidate = groups[last].clone();
        match &best {
            Some((bw, _)) if *bw <= phase_weight => {}
            _ => best = Some((phase_weight, candidate)),
        }
        // merge `last` into `prev`
        for &v in &active {
            if v != last && v != prev {
                w[prev][v] += w[last][v];
                w[v][prev] = w[prev][v];
            }
        }
        let moved = std::mem::take(&mut groups[last]);
        groups[prev].extend(moved);
        active.retain(|&v| v != last);
    }

    let (weight, part) = best.expect("graph has ≥ 2 vertices, at least one phase ran");
    let mut side = vec![false; n];
    for v in part {
        side[v] = true;
    }
    Some(CutResult { weight, side })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example graph from the Stoer–Wagner paper (8 vertices,
    /// min cut weight 4).
    fn stoer_wagner_paper_graph() -> WeightedGraph {
        let mut g = WeightedGraph::new(8);
        let edges = [
            (0, 1, 2),
            (0, 4, 3),
            (1, 2, 3),
            (1, 4, 2),
            (1, 5, 2),
            (2, 3, 4),
            (2, 6, 2),
            (3, 6, 2),
            (3, 7, 2),
            (4, 5, 3),
            (5, 6, 1),
            (6, 7, 3),
        ];
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    fn check_cut(g: &WeightedGraph, cut: &CutResult) {
        // weight reported matches edges crossing the side mask
        let mut total = 0;
        for u in 0..g.vertex_count() {
            for v in (u + 1)..g.vertex_count() {
                if cut.side[u] != cut.side[v] {
                    total += g.weight(u, v);
                }
            }
        }
        assert_eq!(total, cut.weight, "reported weight must match the mask");
        assert!(cut.side.iter().any(|&s| s));
        assert!(cut.side.iter().any(|&s| !s));
    }

    #[test]
    fn paper_graph_min_cut_is_4() {
        let g = stoer_wagner_paper_graph();
        let cut = global_min_cut(&g).unwrap();
        assert_eq!(cut.weight, 4);
        check_cut(&g, &cut);
    }

    #[test]
    fn two_vertices() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 5);
        let cut = global_min_cut(&g).unwrap();
        assert_eq!(cut.weight, 5);
        check_cut(&g, &cut);
    }

    #[test]
    fn single_vertex_has_no_cut() {
        assert!(global_min_cut(&WeightedGraph::new(1)).is_none());
        assert!(global_min_cut(&WeightedGraph::new(0)).is_none());
    }

    #[test]
    fn disconnected_graph_cuts_for_free() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 10);
        g.add_edge(2, 3, 10);
        let cut = global_min_cut(&g).unwrap();
        assert_eq!(cut.weight, 0);
        check_cut(&g, &cut);
    }

    #[test]
    fn path_graph_cuts_lightest_edge() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 5);
        let cut = global_min_cut(&g).unwrap();
        assert_eq!(cut.weight, 1);
        check_cut(&g, &cut);
        // the cut separates {0,1} from {2,3}
        assert_eq!(cut.side[0], cut.side[1]);
        assert_eq!(cut.side[2], cut.side[3]);
        assert_ne!(cut.side[0], cut.side[2]);
    }

    #[test]
    fn star_graph_isolates_a_leaf() {
        let mut g = WeightedGraph::new(5);
        for v in 1..5 {
            g.add_edge(0, v, 2);
        }
        let cut = global_min_cut(&g).unwrap();
        assert_eq!(cut.weight, 2);
        check_cut(&g, &cut);
    }

    #[test]
    fn complete_graph_min_cut_isolates_one_vertex() {
        let n = 6;
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, 1);
            }
        }
        let cut = global_min_cut(&g).unwrap();
        assert_eq!(cut.weight, (n - 1) as u64);
        check_cut(&g, &cut);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 1, 4);
        assert_eq!(g.weight(0, 1), 7);
        assert_eq!(global_min_cut(&g).unwrap().weight, 7);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        WeightedGraph::new(2).add_edge(1, 1, 1);
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        // deterministic LCG so the test is reproducible without rand
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let n = 3 + (trial % 5);
            let mut g = WeightedGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    let w = next() % 6;
                    if w > 0 {
                        g.add_edge(u, v, w);
                    }
                }
            }
            let cut = global_min_cut(&g).unwrap();
            // brute force all bipartitions
            let mut best = u64::MAX;
            for mask in 1..(1u32 << n) - 1 {
                let mut total = 0;
                for u in 0..n {
                    for v in (u + 1)..n {
                        if ((mask >> u) & 1) != ((mask >> v) & 1) {
                            total += g.weight(u, v);
                        }
                    }
                }
                best = best.min(total);
            }
            assert_eq!(cut.weight, best, "trial {trial}, n={n}");
            check_cut(&g, &cut);
        }
    }
}
