//! The cost ledger: every figure in the paper's evaluation is an
//! aggregation over these counters.
//!
//! Counting rules (Section 7.2 and Figure 4's methodology):
//! * a *closed* (boolean) question costs one crowd answer per expert asked;
//! * an *open* question (completion) costs the number of unique variables
//!   the expert filled in;
//! * with majority voting, asking stops as soon as a majority agrees, so
//!   the per-expert answer counts can be below `sample_size × questions`.

use std::fmt;

/// Per-question-type counters for one cleaning session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrowdStats {
    /// `TRUE(Q, t)?` questions posed (distinct logical questions).
    pub verify_answer_questions: usize,
    /// `TRUE(R(ā))?` questions posed.
    pub verify_fact_questions: usize,
    /// Satisfiability checks (`CrowdVerify` on partially-ground bodies).
    pub satisfiable_questions: usize,
    /// Composite `TRUE-ALL` questions posed (Section 9 extension).
    pub composite_questions: usize,
    /// `COMPL(α, Q)` tasks posed.
    pub complete_tasks: usize,
    /// `COMPL(Q(D))` tasks posed.
    pub complete_result_tasks: usize,
    /// Variables filled by experts across all `COMPL(α, Q)` answers.
    pub filled_variables: usize,
    /// Missing answers provided by experts via `COMPL(Q(D))`.
    pub missing_answers_provided: usize,
    /// Total individual crowd answers to closed questions (≥ question count
    /// when several experts vote).
    pub closed_answers: usize,
    /// Crowd answers to `TRUE(Q, t)?` questions specifically.
    pub verify_answer_crowd_answers: usize,
    /// Crowd answers to `TRUE(R(ā))?` questions specifically.
    pub verify_fact_crowd_answers: usize,
    /// Crowd answers to satisfiability questions specifically.
    pub satisfiable_crowd_answers: usize,
    /// Total individual crowd answers to open questions, counted in filled
    /// variables (Figure 4's counting).
    pub open_answer_variables: usize,
    /// Oracle faults observed (timeouts, abstentions, drops), including the
    /// ones later recovered by a retry.
    pub faults: usize,
    /// Retries issued after a transient fault (timeouts only).
    pub retries: usize,
    /// Escalations: a question moved to another panel member after one
    /// expert failed to answer it.
    pub escalations: usize,
    /// Simulated backoff accumulated across retries, in milliseconds. No
    /// wall-clock time is spent — the counter makes the schedule auditable
    /// and deterministic.
    pub simulated_backoff_ms: usize,
}

impl CrowdStats {
    /// Fresh, all-zero ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closed questions of all kinds (a logical-question count).
    pub fn closed_questions(&self) -> usize {
        self.verify_answer_questions + self.verify_fact_questions + self.satisfiable_questions
    }

    /// The paper's "# questions" for deletion figures: tuple-verification
    /// questions (`TRUE(R(ā))?`).
    pub fn deletion_questions(&self) -> usize {
        self.verify_fact_questions
    }

    /// The paper's "# questions" for insertion figures: variables filled by
    /// the crowd, plus satisfiability checks answered along the way.
    pub fn insertion_questions(&self) -> usize {
        self.filled_variables + self.satisfiable_questions
    }

    /// Total crowd answers (Figure 4's y-axis): closed answers plus
    /// open-answer variables.
    pub fn total_crowd_answers(&self) -> usize {
        self.closed_answers + self.open_answer_variables
    }

    /// The session's total cost under the Section 7.2 accounting: each
    /// answer to a closed question costs 1, and each open (completion)
    /// answer costs the number of variables the expert filled in. This is
    /// what the paper charges the crowd for a whole cleaning session and is
    /// identical to [`total_crowd_answers`](Self::total_crowd_answers) —
    /// kept as its own name so call sites say what they mean.
    pub fn total_cost(&self) -> usize {
        self.total_crowd_answers()
    }

    /// Merge another ledger into this one.
    pub fn absorb(&mut self, other: &CrowdStats) {
        self.verify_answer_questions += other.verify_answer_questions;
        self.verify_fact_questions += other.verify_fact_questions;
        self.satisfiable_questions += other.satisfiable_questions;
        self.composite_questions += other.composite_questions;
        self.complete_tasks += other.complete_tasks;
        self.complete_result_tasks += other.complete_result_tasks;
        self.filled_variables += other.filled_variables;
        self.missing_answers_provided += other.missing_answers_provided;
        self.closed_answers += other.closed_answers;
        self.verify_answer_crowd_answers += other.verify_answer_crowd_answers;
        self.verify_fact_crowd_answers += other.verify_fact_crowd_answers;
        self.satisfiable_crowd_answers += other.satisfiable_crowd_answers;
        self.open_answer_variables += other.open_answer_variables;
        self.faults += other.faults;
        self.retries += other.retries;
        self.escalations += other.escalations;
        self.simulated_backoff_ms += other.simulated_backoff_ms;
    }

    /// The difference `self − baseline` (used to isolate one phase of a
    /// session). Saturates at zero.
    pub fn since(&self, baseline: &CrowdStats) -> CrowdStats {
        CrowdStats {
            verify_answer_questions: self
                .verify_answer_questions
                .saturating_sub(baseline.verify_answer_questions),
            verify_fact_questions: self
                .verify_fact_questions
                .saturating_sub(baseline.verify_fact_questions),
            satisfiable_questions: self
                .satisfiable_questions
                .saturating_sub(baseline.satisfiable_questions),
            composite_questions: self
                .composite_questions
                .saturating_sub(baseline.composite_questions),
            complete_tasks: self.complete_tasks.saturating_sub(baseline.complete_tasks),
            complete_result_tasks: self
                .complete_result_tasks
                .saturating_sub(baseline.complete_result_tasks),
            filled_variables: self
                .filled_variables
                .saturating_sub(baseline.filled_variables),
            missing_answers_provided: self
                .missing_answers_provided
                .saturating_sub(baseline.missing_answers_provided),
            closed_answers: self.closed_answers.saturating_sub(baseline.closed_answers),
            verify_answer_crowd_answers: self
                .verify_answer_crowd_answers
                .saturating_sub(baseline.verify_answer_crowd_answers),
            verify_fact_crowd_answers: self
                .verify_fact_crowd_answers
                .saturating_sub(baseline.verify_fact_crowd_answers),
            satisfiable_crowd_answers: self
                .satisfiable_crowd_answers
                .saturating_sub(baseline.satisfiable_crowd_answers),
            open_answer_variables: self
                .open_answer_variables
                .saturating_sub(baseline.open_answer_variables),
            faults: self.faults.saturating_sub(baseline.faults),
            retries: self.retries.saturating_sub(baseline.retries),
            escalations: self.escalations.saturating_sub(baseline.escalations),
            simulated_backoff_ms: self
                .simulated_backoff_ms
                .saturating_sub(baseline.simulated_backoff_ms),
        }
    }
}

impl fmt::Display for CrowdStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verify-answer: {}, verify-fact: {}, satisfiable: {}, complete: {} ({} vars), complete-result: {} ({} answers)",
            self.verify_answer_questions,
            self.verify_fact_questions,
            self.satisfiable_questions,
            self.complete_tasks,
            self.filled_variables,
            self.complete_result_tasks,
            self.missing_answers_provided,
        )?;
        if self.faults > 0 {
            write!(
                f,
                ", faults: {} ({} retries, {} escalations)",
                self.faults, self.retries, self.escalations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_fieldwise() {
        let mut a = CrowdStats {
            verify_fact_questions: 2,
            filled_variables: 3,
            ..Default::default()
        };
        let b = CrowdStats {
            verify_fact_questions: 1,
            closed_answers: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.verify_fact_questions, 3);
        assert_eq!(a.filled_variables, 3);
        assert_eq!(a.closed_answers, 5);
    }

    #[test]
    fn fault_counters_absorb_and_subtract() {
        let mut a = CrowdStats {
            faults: 3,
            retries: 2,
            escalations: 1,
            simulated_backoff_ms: 300,
            ..Default::default()
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.faults, 6);
        assert_eq!(a.retries, 4);
        assert_eq!(a.simulated_backoff_ms, 600);
        let d = a.since(&b);
        assert_eq!(d.faults, 3);
        assert_eq!(d.escalations, 1);
        assert!(a.to_string().contains("faults: 6"));
    }

    #[test]
    fn since_is_a_saturating_difference() {
        let a = CrowdStats {
            verify_fact_questions: 5,
            ..Default::default()
        };
        let b = CrowdStats {
            verify_fact_questions: 2,
            closed_answers: 10,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.verify_fact_questions, 3);
        assert_eq!(d.closed_answers, 0);
    }

    #[test]
    fn aggregates() {
        let s = CrowdStats {
            verify_answer_questions: 1,
            verify_fact_questions: 2,
            satisfiable_questions: 3,
            filled_variables: 4,
            closed_answers: 6,
            open_answer_variables: 4,
            ..Default::default()
        };
        assert_eq!(s.closed_questions(), 6);
        assert_eq!(s.deletion_questions(), 2);
        assert_eq!(s.insertion_questions(), 7);
        assert_eq!(s.total_crowd_answers(), 10);
        assert_eq!(s.total_cost(), 10);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = CrowdStats::default();
        let out = s.to_string();
        for key in [
            "verify-answer",
            "verify-fact",
            "satisfiable",
            "complete-result",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }
}
