//! # qoco-crowd — the oracle-crowd model of QOCO
//!
//! The paper models domain experts as *oracle crowds* (Sections 3.2, 6.2).
//! QOCO interacts with them through four question types:
//!
//! * `TRUE(R(ā))?` — is a fact true? ([`Question::VerifyFact`])
//! * `TRUE(Q, t)?` — is a result tuple a true answer? ([`Question::VerifyAnswer`])
//! * `COMPL(α, Q)` — if the partial assignment `α` is satisfiable, complete
//!   it into a witness ([`Question::Complete`]); the satisfiability check
//!   itself is [`Question::VerifySatisfiable`] (the `CrowdVerify` of
//!   Algorithm 2 on partially-ground bodies)
//! * `COMPL(Q(D))` — provide an answer missing from the result
//!   ([`Question::CompleteResult`])
//!
//! This crate provides the question/answer vocabulary, the
//! [`oracle::Oracle`] trait, a [`perfect::PerfectOracle`] backed by the
//! ground truth `D_G` (the measurement instrument of the paper's Figure 3
//! experiments), an [`imperfect::ImperfectOracle`] with a Bernoulli error
//! rate (Figure 4), the [`session::CrowdAccess`] trait that the cleaning
//! algorithms talk to, single-expert and majority-vote implementations, the
//! per-question-type cost ledger ([`stats::CrowdStats`]), and the
//! enumeration black-box (Trushkowsky et al. \[61\]) deciding when a result
//! is complete ([`enumeration`]).
//!
//! Crowds are *fallible*: oracles can time out, abstain, or drop out
//! ([`fault::OracleError`]), chaos is injected reproducibly by a
//! [`fault::FaultyOracle`] driven by a [`fault::FaultPlan`], sessions absorb
//! faults through a [`session::RetryPolicy`] (surfacing
//! [`session::CrowdError`] only on exhaustion), and every outcome can be
//! written ahead to a [`journal::Journal`] so a killed session resumes
//! bit-identically ([`journal`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumeration;
pub mod fault;
pub mod imperfect;
pub mod journal;
pub mod oracle;
pub mod perfect;
pub mod question;
pub mod sampling;
pub mod session;
pub mod stats;
pub mod suspend;
pub mod transcript;

pub use enumeration::{Chao92Estimator, CompletenessEstimator, GroundTruthEstimator};
pub use fault::{Burst, FaultKind, FaultPlan, FaultyOracle, OracleError};
pub use imperfect::ImperfectOracle;
pub use journal::{Journal, JournalOracle, JournalRecord};
pub use oracle::Oracle;
pub use perfect::PerfectOracle;
pub use question::{Answer, Question, QuestionKind};
pub use sampling::SamplingOracle;
pub use session::{CrowdAccess, CrowdError, MajorityCrowd, RetryPolicy, SingleExpert};
pub use stats::CrowdStats;
pub use suspend::{
    install_suspend_hook, parse_tagged_value, tagged_value, PendingQuestion, SuspendSignal,
    SuspendingOracle,
};
pub use transcript::{RecordingCrowd, TranscriptEntry};
