//! Fault injection: a fallible-crowd model and deterministic chaos plans.
//!
//! Real crowds do not just answer wrongly (that is [`crate::ImperfectOracle`]'s
//! Bernoulli model) — they time out, abstain, and disappear mid-session.
//! [`OracleError`] is the taxonomy; [`FaultyOracle`] is a decorator that
//! injects those failures according to a [`FaultPlan`], deterministically:
//! the fault decision for question *n* is a pure function of
//! `(plan.seed, n, question kind)`, so a chaos run replays bit-identically
//! and a journal replay (see [`crate::journal`]) re-derives the same faults.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::Oracle;
use crate::question::{Answer, Question, QuestionKind};

/// Why an oracle failed to answer a question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OracleError {
    /// The worker did not answer in time. Transient: retrying the same
    /// worker may succeed.
    Timeout,
    /// The worker declined this particular question. Sticky per question:
    /// re-asking the same worker the same question is pointless, but the
    /// worker stays available for other questions.
    Abstain,
    /// The worker left the panel. Permanent: every later question to this
    /// worker fails the same way.
    Dropped,
}

impl OracleError {
    /// The snake_case tag used in journals and fault-plan specs.
    pub fn as_str(&self) -> &'static str {
        match self {
            OracleError::Timeout => "timeout",
            OracleError::Abstain => "abstain",
            OracleError::Dropped => "dropped",
        }
    }

    /// Parse the [`as_str`](Self::as_str) tag back.
    pub fn parse(s: &str) -> Option<OracleError> {
        Some(match s {
            "timeout" => OracleError::Timeout,
            "abstain" => OracleError::Abstain,
            "dropped" | "drop" => OracleError::Dropped,
            _ => return None,
        })
    }
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Timeout => f.write_str("the worker timed out"),
            OracleError::Abstain => f.write_str("the worker abstained"),
            OracleError::Dropped => f.write_str("the worker dropped out of the panel"),
        }
    }
}

/// The kind of fault a plan injects at a given point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Inject [`OracleError::Timeout`].
    Timeout,
    /// Inject [`OracleError::Abstain`].
    Abstain,
    /// Inject [`OracleError::Dropped`] (and every question after it).
    Drop,
}

impl FaultKind {
    /// The error this fault kind surfaces as.
    pub fn to_error(self) -> OracleError {
        match self {
            FaultKind::Timeout => OracleError::Timeout,
            FaultKind::Abstain => OracleError::Abstain,
            FaultKind::Drop => OracleError::Dropped,
        }
    }

    fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "timeout" => Ok(FaultKind::Timeout),
            "abstain" => Ok(FaultKind::Abstain),
            "drop" | "dropped" => Ok(FaultKind::Drop),
            other => Err(format!(
                "unknown fault kind {other:?} (expected timeout, abstain or drop)"
            )),
        }
    }
}

/// A deterministic burst window: questions `start ..= start + len - 1`
/// (1-based) all fail with `kind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// First failing question (1-based).
    pub start: u64,
    /// Number of consecutive failing questions.
    pub len: u64,
    /// The fault injected throughout the window.
    pub kind: FaultKind,
}

/// A reproducible chaos schedule for one oracle.
///
/// Deterministic triggers (`fail_at`, `bursts`, `drop_after`) are checked
/// first, in that order; otherwise a per-question RNG derived from
/// `(seed, question index)` draws against the stochastic rates. Rates can
/// be overridden per [`QuestionKind`] — e.g. completions time out more
/// often than boolean checks.
///
/// Parse one from a spec string (the `--faults` CLI flag):
///
/// ```text
/// seed=42,timeout=0.1,abstain=0.05,timeout.complete=0.5,fail@7=timeout,burst@50+10=abstain,drop@120
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the stochastic draws. Same seed ⇒ same faults.
    pub seed: u64,
    /// Baseline probability of a timeout per question.
    pub timeout_rate: f64,
    /// Baseline probability of an abstention per question.
    pub abstain_rate: f64,
    /// Per-question-kind timeout-rate overrides.
    pub timeout_by_kind: BTreeMap<QuestionKind, f64>,
    /// Per-question-kind abstain-rate overrides.
    pub abstain_by_kind: BTreeMap<QuestionKind, f64>,
    /// "Fail question N exactly": 1-based question index → fault.
    pub fail_at: BTreeMap<u64, FaultKind>,
    /// Burst windows of consecutive failures.
    pub bursts: Vec<Burst>,
    /// The worker drops permanently after answering this many questions:
    /// every question with 1-based index `> drop_after` returns
    /// [`OracleError::Dropped`].
    pub drop_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that never injects anything (the `Default`).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// The fault (if any) this plan injects for 1-based question `n` of
    /// kind `kind`. Pure: same inputs, same answer.
    pub fn fault_for(&self, n: u64, kind: QuestionKind) -> Option<OracleError> {
        if let Some(after) = self.drop_after {
            if n > after {
                return Some(OracleError::Dropped);
            }
        }
        if let Some(k) = self.fail_at.get(&n) {
            return Some(k.to_error());
        }
        for b in &self.bursts {
            if n >= b.start && n < b.start.saturating_add(b.len) {
                return Some(b.kind.to_error());
            }
        }
        let timeout = self
            .timeout_by_kind
            .get(&kind)
            .copied()
            .unwrap_or(self.timeout_rate);
        let abstain = self
            .abstain_by_kind
            .get(&kind)
            .copied()
            .unwrap_or(self.abstain_rate);
        if timeout <= 0.0 && abstain <= 0.0 {
            return None;
        }
        // One RNG per question, derived from (seed, n): stateless, so a
        // replayed session re-derives identical faults without replaying
        // the draw sequence.
        let mut rng = StdRng::seed_from_u64(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u: f64 = rng.random();
        if u < timeout {
            Some(OracleError::Timeout)
        } else if u < timeout + abstain {
            Some(OracleError::Abstain)
        } else {
            None
        }
    }
}

fn parse_rate(key: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .parse()
        .map_err(|_| format!("{key}: {value:?} is not a number"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("{key}: rate {rate} is outside [0, 1]"));
    }
    Ok(rate)
}

fn parse_kind_suffix(key: &str) -> Result<Option<QuestionKind>, String> {
    match key.split_once('.') {
        None => Ok(None),
        Some((_, kind)) => QuestionKind::parse(kind)
            .map(Some)
            .ok_or_else(|| format!("{key}: unknown question kind {kind:?}")),
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parse a comma-separated spec; see the type-level docs for the
    /// grammar. Unknown keys are errors so typos do not silently disable
    /// chaos.
    fn from_str(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(rest) = token.strip_prefix("fail@") {
                let (n, kind) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("{token}: expected fail@N=<kind>"))?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("{token}: {n:?} is not a question index"))?;
                plan.fail_at.insert(n, FaultKind::parse(kind)?);
            } else if let Some(rest) = token.strip_prefix("burst@") {
                let (window, kind) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("{token}: expected burst@START+LEN=<kind>"))?;
                let (start, len) = window
                    .split_once('+')
                    .ok_or_else(|| format!("{token}: expected burst@START+LEN=<kind>"))?;
                let start: u64 = start
                    .parse()
                    .map_err(|_| format!("{token}: bad burst start {start:?}"))?;
                let len: u64 = len
                    .parse()
                    .map_err(|_| format!("{token}: bad burst length {len:?}"))?;
                plan.bursts.push(Burst {
                    start,
                    len,
                    kind: FaultKind::parse(kind)?,
                });
            } else if let Some(n) = token.strip_prefix("drop@") {
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("{token}: {n:?} is not a question index"))?;
                plan.drop_after = Some(n);
            } else {
                let (key, value) = token
                    .split_once('=')
                    .ok_or_else(|| format!("{token}: expected key=value"))?;
                if key == "seed" {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("seed: {value:?} is not a u64"))?;
                } else if key == "timeout" || key.starts_with("timeout.") {
                    let rate = parse_rate(key, value)?;
                    match parse_kind_suffix(key)? {
                        Some(kind) => {
                            plan.timeout_by_kind.insert(kind, rate);
                        }
                        None => plan.timeout_rate = rate,
                    }
                } else if key == "abstain" || key.starts_with("abstain.") {
                    let rate = parse_rate(key, value)?;
                    match parse_kind_suffix(key)? {
                        Some(kind) => {
                            plan.abstain_by_kind.insert(kind, rate);
                        }
                        None => plan.abstain_rate = rate,
                    }
                } else {
                    return Err(format!(
                        "unknown fault-plan key {key:?} (expected seed, timeout[.kind], \
                         abstain[.kind], fail@N=<kind>, burst@START+LEN=<kind>, drop@N)"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

/// Decorates any [`Oracle`] with deterministic fault injection.
///
/// The decorator counts the questions this worker has been asked (retries
/// count — each retry is a fresh ask) and consults the [`FaultPlan`] before
/// forwarding to the inner oracle. A question that faults never reaches the
/// inner oracle, so the inner oracle's own RNG stream (e.g.
/// [`crate::ImperfectOracle`]'s) only advances on delivered answers — which
/// is exactly what journal replay reproduces.
#[derive(Debug, Clone)]
pub struct FaultyOracle<O: Oracle> {
    inner: O,
    plan: FaultPlan,
    asked: u64,
}

impl<O: Oracle> FaultyOracle<O> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: O, plan: FaultPlan) -> FaultyOracle<O> {
        FaultyOracle {
            inner,
            plan,
            asked: 0,
        }
    }

    /// How many questions this worker has been asked so far.
    pub fn asked(&self) -> u64 {
        self.asked
    }

    /// The plan driving the chaos.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<O: Oracle> Oracle for FaultyOracle<O> {
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError> {
        self.asked += 1;
        if let Some(err) = self.plan.fault_for(self.asked, q.kind()) {
            return Err(err);
        }
        self.inner.answer(q)
    }

    fn label(&self) -> String {
        format!("faulty({})", self.inner.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfect::PerfectOracle;
    use qoco_data::{tup, Database, RelId, Schema};

    fn ground() -> Database {
        let schema = Schema::builder().relation("T", &["a"]).build().unwrap();
        let mut db = Database::empty(schema);
        db.insert_named("T", tup!["x"]).unwrap();
        db
    }

    fn verify_q() -> Question {
        Question::VerifyFact(qoco_data::Fact::new(RelId::from_index(0), tup!["x"]))
    }

    #[test]
    fn spec_round_trip_covers_every_clause() {
        let plan: FaultPlan = "seed=42, timeout=0.1, abstain=0.05, timeout.complete=0.5, \
             fail@7=timeout, burst@50+10=abstain, drop@120"
            .parse()
            .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.timeout_rate, 0.1);
        assert_eq!(plan.abstain_rate, 0.05);
        assert_eq!(
            plan.timeout_by_kind.get(&QuestionKind::Complete),
            Some(&0.5)
        );
        assert_eq!(plan.fail_at.get(&7), Some(&FaultKind::Timeout));
        assert_eq!(
            plan.bursts,
            vec![Burst {
                start: 50,
                len: 10,
                kind: FaultKind::Abstain
            }]
        );
        assert_eq!(plan.drop_after, Some(120));
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("frobnicate=1".parse::<FaultPlan>().is_err());
        assert!("timeout=1.5".parse::<FaultPlan>().is_err());
        assert!("timeout.nonsense=0.5".parse::<FaultPlan>().is_err());
        assert!("fail@x=timeout".parse::<FaultPlan>().is_err());
        assert!("fail@3=explode".parse::<FaultPlan>().is_err());
        assert!("burst@5=timeout".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn deterministic_triggers_fire_exactly_where_scheduled() {
        let plan: FaultPlan = "fail@3=abstain,burst@5+2=timeout,drop@8".parse().unwrap();
        let mut oracle = FaultyOracle::new(PerfectOracle::new(ground()), plan);
        let q = verify_q();
        let outcomes: Vec<_> = (1..=10).map(|_| oracle.answer(&q)).collect();
        assert!(outcomes[0].is_ok()); // q1
        assert!(outcomes[1].is_ok()); // q2
        assert_eq!(outcomes[2], Err(OracleError::Abstain)); // q3: fail@3
        assert!(outcomes[3].is_ok()); // q4
        assert_eq!(outcomes[4], Err(OracleError::Timeout)); // q5: burst
        assert_eq!(outcomes[5], Err(OracleError::Timeout)); // q6: burst
        assert!(outcomes[6].is_ok()); // q7
        assert!(outcomes[7].is_ok()); // q8: last answered question
        assert_eq!(outcomes[8], Err(OracleError::Dropped)); // q9
        assert_eq!(outcomes[9], Err(OracleError::Dropped)); // q10
    }

    #[test]
    fn stochastic_faults_replay_bit_identically() {
        let plan: FaultPlan = "seed=7,timeout=0.4,abstain=0.2".parse().unwrap();
        let q = verify_q();
        let run = || -> Vec<Result<Answer, OracleError>> {
            let mut oracle = FaultyOracle::new(PerfectOracle::new(ground()), plan.clone());
            (0..200).map(|_| oracle.answer(&q)).collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let timeouts = a
            .iter()
            .filter(|r| **r == Err(OracleError::Timeout))
            .count();
        let abstains = a
            .iter()
            .filter(|r| **r == Err(OracleError::Abstain))
            .count();
        // Rates are rough over 200 draws, but both faults must occur.
        assert!(timeouts > 40, "{timeouts} timeouts in 200 draws");
        assert!(abstains > 10, "{abstains} abstains in 200 draws");
    }

    #[test]
    fn per_kind_override_shadows_the_baseline() {
        let plan: FaultPlan = "seed=1,timeout=1.0,timeout.verify_fact=0.0"
            .parse()
            .unwrap();
        assert_eq!(plan.fault_for(1, QuestionKind::VerifyFact), None);
        assert_eq!(
            plan.fault_for(1, QuestionKind::Complete),
            Some(OracleError::Timeout)
        );
    }

    #[test]
    fn empty_plan_is_transparent() {
        let plan = FaultPlan::none();
        let mut oracle = FaultyOracle::new(PerfectOracle::new(ground()), plan);
        for _ in 0..50 {
            assert_eq!(oracle.answer(&verify_q()), Ok(Answer::Bool(true)));
        }
    }
}
