//! Crowd sessions: the typed interface the cleaning algorithms use.
//!
//! [`CrowdAccess`] wraps oracles behind typed ask-methods and records every
//! interaction in a [`CrowdStats`] ledger. Two implementations:
//!
//! * [`SingleExpert`] — one oracle, each question asked once (the perfect
//!   oracle setting of Figure 3);
//! * [`MajorityCrowd`] — a panel of experts with majority voting and early
//!   stop, plus closed-question re-verification of every open answer
//!   (Section 6.2, Figure 4). This is the "simple estimation method where
//!   each question is posed to a fixed-size sample of the crowd members"
//!   with majority aggregation; any other black-box aggregator could be
//!   slotted in the same way.
//!
//! Oracles are fallible (see [`crate::fault`]): every ask-method returns
//! `Result<_, CrowdError>`. Failures are absorbed by a [`RetryPolicy`] —
//! transient timeouts are retried with a deterministic *simulated* backoff
//! (a counter, not a sleep), abstentions escalate to other panel members,
//! and permanently dropped experts shrink [`MajorityCrowd`]'s quorum. Only
//! when the policy is exhausted does a [`CrowdError`] surface, which the
//! cleaners turn into an `unresolved` entry of a partial report. With an
//! infallible oracle none of this machinery runs: the ask order, early-stop
//! points and stat counts are identical to the pre-fault implementation.

use std::fmt;

use qoco_data::{Fact, Tuple};
use qoco_engine::Assignment;
use qoco_query::ConjunctiveQuery;

use crate::fault::OracleError;
use crate::oracle::Oracle;
use crate::question::Question;
use crate::stats::CrowdStats;

/// Report one crowd interaction to the telemetry layer: bump the
/// `crowd.questions_asked` counter, the live `session.questions_asked`
/// gauge, and emit a timeline event, then advance the qoco-watch logical
/// clock — crowd-answer boundaries *are* the deterministic tick, so a
/// journal-resumed session replays the identical sample series. Inert
/// (one atomic load each) while telemetry is disabled or no watch runs.
fn tel_question(name: &'static str, detail: impl FnOnce() -> String) {
    qoco_telemetry::counter_add("crowd.questions_asked", 1);
    qoco_telemetry::gauge_add("session.questions_asked", 1.0);
    qoco_telemetry::event(name, detail);
    qoco_telemetry::watch_tick();
}

/// A question the crowd could not answer even after the retry policy was
/// exhausted. Carries enough context for a report's `unresolved` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrowdError {
    /// The question that went unanswered (its `Debug` rendering).
    pub question: String,
    /// Individual asks spent before giving up (across retries and panel
    /// members).
    pub attempts: usize,
    /// The final fault observed.
    pub last: OracleError,
}

impl CrowdError {
    fn new(q: &Question, attempts: usize, last: OracleError) -> CrowdError {
        CrowdError {
            question: format!("{q:?}"),
            attempts,
            last,
        }
    }
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crowd unavailable for {} after {} attempt(s): {}",
            self.question, self.attempts, self.last
        )
    }
}

/// How a session absorbs oracle faults before surfacing a [`CrowdError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries (beyond the first ask) for a *transient* fault (timeout) on
    /// the same expert. Abstentions and drops are never retried: an
    /// abstention is sticky per question, a drop is permanent.
    pub max_retries: usize,
    /// Base of the simulated exponential backoff schedule: retry *k* adds
    /// `backoff_base_ms << (k-1)` to [`CrowdStats::simulated_backoff_ms`].
    /// Nothing sleeps — the schedule is a deterministic, auditable counter.
    pub backoff_base_ms: usize,
    /// [`MajorityCrowd`] refuses to answer (rather than degrade further)
    /// once fewer than this many experts remain alive.
    pub min_quorum: usize,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff_base_ms: 100,
            min_quorum: 1,
        }
    }
}

/// Ask one expert one question under a retry policy. `dead` is the
/// expert's permanent-failure latch: set when the expert drops, checked so
/// later questions fail fast without bothering the oracle.
fn ask_with_retry<O: Oracle>(
    oracle: &mut O,
    q: &Question,
    policy: &RetryPolicy,
    dead: &mut bool,
    stats: &mut CrowdStats,
) -> Result<Answer, CrowdError> {
    if *dead {
        return Err(CrowdError::new(q, 0, OracleError::Dropped));
    }
    let mut attempts = 0usize;
    loop {
        attempts += 1;
        match oracle.answer(q) {
            Ok(a) => return Ok(a),
            Err(e) => {
                stats.faults += 1;
                qoco_telemetry::counter_add("crowd.faults", 1);
                qoco_telemetry::event("crowd.fault", || format!("{} on {q:?}", e.as_str()));
                match e {
                    OracleError::Timeout if attempts <= policy.max_retries => {
                        let backoff = policy
                            .backoff_base_ms
                            .saturating_mul(1usize << (attempts - 1).min(16));
                        stats.simulated_backoff_ms =
                            stats.simulated_backoff_ms.saturating_add(backoff);
                        stats.retries += 1;
                        qoco_telemetry::counter_add("crowd.retries", 1);
                        qoco_telemetry::record_decision("crowd.retry", || {
                            qoco_telemetry::DecisionDetail {
                                question: format!("{q:?}"),
                                outcome: format!(
                                    "retry {attempts}/{} after {backoff}ms backoff",
                                    policy.max_retries
                                ),
                                evidence: vec![
                                    ("fault", e.as_str().to_string()),
                                    (
                                        "policy",
                                        format!(
                                            "max_retries={} backoff_base_ms={}",
                                            policy.max_retries, policy.backoff_base_ms
                                        ),
                                    ),
                                ],
                            }
                        });
                    }
                    OracleError::Dropped => {
                        *dead = true;
                        return Err(CrowdError::new(q, attempts, e));
                    }
                    _ => return Err(CrowdError::new(q, attempts, e)),
                }
            }
        }
    }
}

use crate::question::Answer;

/// The typed crowd interface used by the cleaning algorithms.
///
/// Every method returns `Err(CrowdError)` when the crowd could not produce
/// an answer at all (after retries/escalation); the cleaners record such
/// questions as `unresolved` instead of aborting the whole session.
pub trait CrowdAccess {
    /// `TRUE(R(ā))?`
    fn verify_fact(&mut self, f: &Fact) -> Result<bool, CrowdError>;
    /// `TRUE(Q, t)?`
    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> Result<bool, CrowdError>;
    /// Is `α` satisfiable w.r.t. `q` and the ground truth?
    fn verify_satisfiable(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<bool, CrowdError>;
    /// Composite question (Section 9 extension): are ALL of these facts
    /// true? The default asks each fact individually; sessions that support
    /// composite questions override it with a single interaction.
    fn verify_facts_all(&mut self, facts: &[Fact]) -> Result<bool, CrowdError> {
        for f in facts {
            if !self.verify_fact(f)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
    /// `COMPL(α, Q)`: extend `α` into a total valid assignment, if possible.
    fn complete(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<Option<Assignment>, CrowdError>;
    /// `COMPL(Q(D))`: one answer missing from `known`, or `None`.
    fn next_missing_answer(
        &mut self,
        q: &ConjunctiveQuery,
        known: &[Tuple],
    ) -> Result<Option<Tuple>, CrowdError>;
    /// The interaction ledger so far.
    fn stats(&self) -> CrowdStats;
}

/// One oracle; every question asked exactly once (plus policy retries).
pub struct SingleExpert<O: Oracle> {
    oracle: O,
    stats: CrowdStats,
    policy: RetryPolicy,
    dead: bool,
}

impl<O: Oracle> SingleExpert<O> {
    /// Wrap an oracle with the default [`RetryPolicy`].
    pub fn new(oracle: O) -> Self {
        SingleExpert {
            oracle,
            stats: CrowdStats::new(),
            policy: RetryPolicy::default(),
            dead: false,
        }
    }

    /// Replace the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The wrapped oracle.
    pub fn oracle(&self) -> &O {
        &self.oracle
    }

    fn ask(&mut self, q: &Question) -> Result<Answer, CrowdError> {
        ask_with_retry(
            &mut self.oracle,
            q,
            &self.policy,
            &mut self.dead,
            &mut self.stats,
        )
    }
}

impl<O: Oracle> CrowdAccess for SingleExpert<O> {
    fn verify_fact(&mut self, f: &Fact) -> Result<bool, CrowdError> {
        self.stats.verify_fact_questions += 1;
        tel_question("crowd.verify_fact", || format!("{f:?}"));
        let b = self.ask(&Question::VerifyFact(f.clone()))?.expect_bool();
        self.stats.closed_answers += 1;
        self.stats.verify_fact_crowd_answers += 1;
        Ok(b)
    }

    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> Result<bool, CrowdError> {
        self.stats.verify_answer_questions += 1;
        tel_question("crowd.verify_answer", || format!("{}({t})", q.name()));
        let b = self
            .ask(&Question::VerifyAnswer {
                query: q.clone(),
                answer: t.clone(),
            })?
            .expect_bool();
        self.stats.closed_answers += 1;
        self.stats.verify_answer_crowd_answers += 1;
        Ok(b)
    }

    fn verify_satisfiable(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<bool, CrowdError> {
        self.stats.satisfiable_questions += 1;
        tel_question("crowd.verify_satisfiable", || {
            format!("{} with {} bound vars", q.name(), partial.len())
        });
        let b = self
            .ask(&Question::VerifySatisfiable {
                query: q.clone(),
                partial: partial.clone(),
            })?
            .expect_bool();
        self.stats.closed_answers += 1;
        self.stats.satisfiable_crowd_answers += 1;
        Ok(b)
    }

    fn verify_facts_all(&mut self, facts: &[Fact]) -> Result<bool, CrowdError> {
        self.stats.composite_questions += 1;
        tel_question("crowd.verify_facts_all", || {
            format!("{} facts", facts.len())
        });
        let b = self
            .ask(&Question::VerifyAllFacts(facts.to_vec()))?
            .expect_bool();
        self.stats.closed_answers += 1;
        Ok(b)
    }

    fn complete(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<Option<Assignment>, CrowdError> {
        self.stats.complete_tasks += 1;
        tel_question("crowd.complete", || {
            format!("{} from {} bound vars", q.name(), partial.len())
        });
        let reply = self
            .ask(&Question::Complete {
                query: q.clone(),
                partial: partial.clone(),
            })?
            .expect_completion();
        if let Some(total) = &reply {
            let filled = total.len().saturating_sub(partial.len());
            self.stats.filled_variables += filled;
            self.stats.open_answer_variables += filled;
        }
        Ok(reply)
    }

    fn next_missing_answer(
        &mut self,
        q: &ConjunctiveQuery,
        known: &[Tuple],
    ) -> Result<Option<Tuple>, CrowdError> {
        self.stats.complete_result_tasks += 1;
        tel_question("crowd.complete_result", || {
            format!("{} with {} known answers", q.name(), known.len())
        });
        let reply = self
            .ask(&Question::CompleteResult {
                query: q.clone(),
                known: known.to_vec(),
            })?
            .expect_missing();
        if reply.is_some() {
            self.stats.missing_answers_provided += 1;
            self.stats.open_answer_variables += q.head().len();
        }
        Ok(reply)
    }

    fn stats(&self) -> CrowdStats {
        self.stats
    }
}

/// A fixed-size panel of experts with majority voting and early stop.
///
/// When experts drop out permanently, the panel *degrades its quorum*: the
/// majority threshold is recomputed over the experts still alive at each
/// question, so a 5-member panel that lost two experts behaves like a
/// 3-member panel. The panel only errors once fewer than
/// [`RetryPolicy::min_quorum`] experts remain (or nobody answers a given
/// question at all).
pub struct MajorityCrowd<O: Oracle> {
    experts: Vec<O>,
    /// Permanent-failure latch per expert; `dead[i]` ⇒ skip expert `i`.
    dead: Vec<bool>,
    stats: CrowdStats,
    policy: RetryPolicy,
    /// round-robin cursor for open questions
    next_open: usize,
}

impl<O: Oracle> MajorityCrowd<O> {
    /// Build a majority-vote crowd. The panel size should be odd so a
    /// majority always exists.
    ///
    /// # Panics
    /// Panics on an empty panel.
    pub fn new(experts: Vec<O>) -> Self {
        assert!(!experts.is_empty(), "the crowd needs at least one expert");
        let dead = vec![false; experts.len()];
        MajorityCrowd {
            experts,
            dead,
            stats: CrowdStats::new(),
            policy: RetryPolicy::default(),
            next_open: 0,
        }
    }

    /// Replace the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of experts on the panel.
    pub fn size(&self) -> usize {
        self.experts.len()
    }

    /// Number of experts still alive (not permanently dropped).
    pub fn alive(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    fn quorum_err(&self, q: &Question) -> CrowdError {
        CrowdError::new(q, 0, OracleError::Dropped)
    }

    /// Ask a closed question to the alive experts until a majority of them
    /// agrees (e.g. 2 of 3), counting each individual answer. An expert
    /// that fails the question is skipped (an *escalation* to the rest of
    /// the panel); the verdict is the majority of the answers actually
    /// delivered. Errors only when nobody answers.
    fn majority_bool(&mut self, q: &Question) -> Result<bool, CrowdError> {
        tel_question("crowd.majority_question", || q.kind().as_str().to_string());
        let alive: Vec<usize> = (0..self.experts.len()).filter(|&i| !self.dead[i]).collect();
        if alive.is_empty() || alive.len() < self.policy.min_quorum {
            return Err(self.quorum_err(q));
        }
        // Quorum degradation: the majority threshold tracks the panel that
        // is actually alive at this question, not the original size.
        let need = alive.len() / 2 + 1;
        let mut yes = 0usize;
        let mut no = 0usize;
        let mut answered = 0usize;
        let mut attempts = 0usize;
        let mut last = OracleError::Dropped;
        for (pos, &idx) in alive.iter().enumerate() {
            match ask_with_retry(
                &mut self.experts[idx],
                q,
                &self.policy,
                &mut self.dead[idx],
                &mut self.stats,
            ) {
                Ok(answer) => {
                    let b = answer.expect_bool();
                    answered += 1;
                    self.stats.closed_answers += 1;
                    match q {
                        Question::VerifyAnswer { .. } => {
                            self.stats.verify_answer_crowd_answers += 1
                        }
                        Question::VerifyFact(_) => self.stats.verify_fact_crowd_answers += 1,
                        Question::VerifySatisfiable { .. } => {
                            self.stats.satisfiable_crowd_answers += 1
                        }
                        _ => {}
                    }
                    if b {
                        yes += 1;
                    } else {
                        no += 1;
                    }
                    if yes >= need || no >= need {
                        break;
                    }
                }
                Err(e) => {
                    attempts += e.attempts;
                    last = e.last;
                    if pos + 1 < alive.len() {
                        self.stats.escalations += 1;
                        qoco_telemetry::counter_add("crowd.escalations", 1);
                    }
                }
            }
        }
        if answered == 0 {
            return Err(CrowdError::new(q, attempts, last));
        }
        // On a fully-answering panel this is the classic `yes >= need`
        // (early stop at `yes >= need` implies `yes > no`, and a full poll
        // reaches a strict majority iff `yes > no`); when experts failed
        // mid-question it is the majority of delivered answers, ties → NO.
        Ok(yes > no)
    }

    fn verify_completion(
        &mut self,
        q: &ConjunctiveQuery,
        total: &Assignment,
    ) -> Result<bool, CrowdError> {
        // Section 6.2: "if a set of tuples S is the answer to some question
        // COMPL(α,Q), the system poses the question TRUE(R(ā))? for each
        // tuple R(ā) ∈ S."
        for atom in q.atoms() {
            let Some(fact) = total.ground_atom(atom) else {
                return Ok(false);
            };
            self.stats.verify_fact_questions += 1;
            if !self.majority_bool(&Question::VerifyFact(fact))? {
                return Ok(false);
            }
        }
        // inequalities must hold on a valid assignment
        Ok(q.inequalities()
            .iter()
            .all(|e| total.check_inequality(e) == Some(true)))
    }
}

impl<O: Oracle> CrowdAccess for MajorityCrowd<O> {
    fn verify_fact(&mut self, f: &Fact) -> Result<bool, CrowdError> {
        self.stats.verify_fact_questions += 1;
        self.majority_bool(&Question::VerifyFact(f.clone()))
    }

    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> Result<bool, CrowdError> {
        self.stats.verify_answer_questions += 1;
        self.majority_bool(&Question::VerifyAnswer {
            query: q.clone(),
            answer: t.clone(),
        })
    }

    fn verify_satisfiable(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<bool, CrowdError> {
        self.stats.satisfiable_questions += 1;
        self.majority_bool(&Question::VerifySatisfiable {
            query: q.clone(),
            partial: partial.clone(),
        })
    }

    fn verify_facts_all(&mut self, facts: &[Fact]) -> Result<bool, CrowdError> {
        self.stats.composite_questions += 1;
        self.majority_bool(&Question::VerifyAllFacts(facts.to_vec()))
    }

    fn complete(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<Option<Assignment>, CrowdError> {
        // Ask experts in rotation; accept the first completion whose facts
        // survive closed-question verification. An expert that fails the
        // task escalates to the next one in the rotation.
        let n = self.experts.len();
        if self.alive() == 0 || self.alive() < self.policy.min_quorum {
            return Err(self.quorum_err(&Question::Complete {
                query: q.clone(),
                partial: partial.clone(),
            }));
        }
        let mut any_reply = false;
        let mut attempts = 0usize;
        let mut last = OracleError::Dropped;
        let question = Question::Complete {
            query: q.clone(),
            partial: partial.clone(),
        };
        for i in 0..n {
            let idx = (self.next_open + i) % n;
            if self.dead[idx] {
                continue;
            }
            self.stats.complete_tasks += 1;
            tel_question("crowd.complete", || {
                format!("{} from {} bound vars", q.name(), partial.len())
            });
            let reply = match ask_with_retry(
                &mut self.experts[idx],
                &question,
                &self.policy,
                &mut self.dead[idx],
                &mut self.stats,
            ) {
                Ok(answer) => {
                    any_reply = true;
                    answer.expect_completion()
                }
                Err(e) => {
                    attempts += e.attempts;
                    last = e.last;
                    self.stats.escalations += 1;
                    qoco_telemetry::counter_add("crowd.escalations", 1);
                    continue;
                }
            };
            let Some(total) = reply else { continue };
            let filled = total.len().saturating_sub(partial.len());
            self.stats.open_answer_variables += filled;
            self.stats.filled_variables += filled;
            if self.verify_completion(q, &total)? {
                self.next_open = (idx + 1) % n;
                return Ok(Some(total));
            }
        }
        if !any_reply {
            return Err(CrowdError::new(&question, attempts, last));
        }
        self.next_open = (self.next_open + 1) % n;
        Ok(None)
    }

    fn next_missing_answer(
        &mut self,
        q: &ConjunctiveQuery,
        known: &[Tuple],
    ) -> Result<Option<Tuple>, CrowdError> {
        let n = self.experts.len();
        let question = Question::CompleteResult {
            query: q.clone(),
            known: known.to_vec(),
        };
        if self.alive() == 0 || self.alive() < self.policy.min_quorum {
            return Err(self.quorum_err(&question));
        }
        let mut any_reply = false;
        let mut attempts = 0usize;
        let mut last = OracleError::Dropped;
        for i in 0..n {
            let idx = (self.next_open + i) % n;
            if self.dead[idx] {
                continue;
            }
            self.stats.complete_result_tasks += 1;
            tel_question("crowd.complete_result", || {
                format!("{} with {} known answers", q.name(), known.len())
            });
            let reply = match ask_with_retry(
                &mut self.experts[idx],
                &question,
                &self.policy,
                &mut self.dead[idx],
                &mut self.stats,
            ) {
                Ok(answer) => {
                    any_reply = true;
                    answer.expect_missing()
                }
                Err(e) => {
                    attempts += e.attempts;
                    last = e.last;
                    self.stats.escalations += 1;
                    qoco_telemetry::counter_add("crowd.escalations", 1);
                    continue;
                }
            };
            let Some(t) = reply else { continue };
            self.stats.open_answer_variables += q.head().len();
            // Section 6.2: verify with the closed question TRUE(Q, t)?
            self.stats.verify_answer_questions += 1;
            if self.majority_bool(&Question::VerifyAnswer {
                query: q.clone(),
                answer: t.clone(),
            })? {
                self.stats.missing_answers_provided += 1;
                self.next_open = (idx + 1) % n;
                return Ok(Some(t));
            }
        }
        if !any_reply {
            return Err(CrowdError::new(&question, attempts, last));
        }
        self.next_open = (self.next_open + 1) % n;
        Ok(None)
    }

    fn stats(&self) -> CrowdStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyOracle;
    use crate::imperfect::ImperfectOracle;
    use crate::perfect::PerfectOracle;
    use qoco_data::{tup, Database, Schema};
    use qoco_query::parse_query;
    use std::sync::Arc;

    fn ground() -> Database {
        let s = Schema::builder()
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut g = Database::empty(s);
        for (c, k) in [("GER", "EU"), ("ITA", "EU"), ("BRA", "SA")] {
            g.insert_named("Teams", tup![c, k]).unwrap();
        }
        g
    }

    fn schema() -> Arc<Schema> {
        ground().schema().clone()
    }

    fn faulty(spec: &str) -> FaultyOracle<PerfectOracle> {
        FaultyOracle::new(PerfectOracle::new(ground()), spec.parse().unwrap())
    }

    #[test]
    fn single_expert_counts_closed_questions() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        assert!(crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "EU"]))
            .unwrap());
        assert!(!crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "SA"]))
            .unwrap());
        let st = crowd.stats();
        assert_eq!(st.verify_fact_questions, 2);
        assert_eq!(st.closed_answers, 2);
    }

    #[test]
    fn single_expert_counts_filled_variables() {
        let g = ground();
        let q = parse_query(g.schema(), "(x, k) :- Teams(x, k)").unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let partial =
            Assignment::from_pairs([(qoco_query::Var::new("x"), qoco_data::Value::text("ITA"))]);
        let total = crowd.complete(&q, &partial).unwrap().unwrap();
        assert_eq!(total.len(), 2);
        let st = crowd.stats();
        assert_eq!(st.complete_tasks, 1);
        assert_eq!(st.filled_variables, 1); // only k was filled
        assert_eq!(st.open_answer_variables, 1);
    }

    #[test]
    fn single_expert_missing_answer_counts_head_vars() {
        let g = ground();
        let q = parse_query(g.schema(), r#"(x) :- Teams(x, "EU")"#).unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let t = crowd
            .next_missing_answer(&q, &[tup!["GER"]])
            .unwrap()
            .unwrap();
        assert_eq!(t, tup!["ITA"]);
        assert_eq!(crowd.stats().missing_answers_provided, 1);
        assert_eq!(crowd.stats().open_answer_variables, 1);
        assert_eq!(
            crowd
                .next_missing_answer(&q, &[tup!["GER"], tup!["ITA"]])
                .unwrap(),
            None
        );
    }

    #[test]
    fn single_expert_retries_through_transient_timeouts() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        // first two asks time out, the third succeeds — within the default
        // budget of 2 retries
        let mut crowd = SingleExpert::new(faulty("fail@1=timeout,fail@2=timeout"));
        assert!(crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "EU"]))
            .unwrap());
        let st = crowd.stats();
        assert_eq!(st.faults, 2);
        assert_eq!(st.retries, 2);
        assert_eq!(st.simulated_backoff_ms, 100 + 200);
        assert_eq!(st.verify_fact_questions, 1);
        assert_eq!(st.closed_answers, 1);
    }

    #[test]
    fn single_expert_surfaces_exhaustion() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        // three timeouts exhaust 1 ask + 2 retries
        let mut crowd = SingleExpert::new(faulty("burst@1+3=timeout"));
        let err = crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "EU"]))
            .unwrap_err();
        assert_eq!(err.last, OracleError::Timeout);
        assert_eq!(err.attempts, 3);
        // the question after the burst succeeds again
        assert!(crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "EU"]))
            .unwrap());
    }

    #[test]
    fn abstentions_are_not_retried() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        let mut crowd = SingleExpert::new(faulty("fail@1=abstain"));
        let err = crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "EU"]))
            .unwrap_err();
        assert_eq!(err.last, OracleError::Abstain);
        assert_eq!(err.attempts, 1);
        assert_eq!(crowd.stats().retries, 0);
    }

    #[test]
    fn dropped_single_expert_fails_fast_forever() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        let mut crowd = SingleExpert::new(faulty("drop@1"));
        let f = Fact::new(teams, tup!["GER", "EU"]);
        assert!(crowd.verify_fact(&f).unwrap()); // question 1 still answered
        assert_eq!(
            crowd.verify_fact(&f).unwrap_err().last,
            OracleError::Dropped
        );
        let faults_after_drop = crowd.stats().faults;
        // fail-fast: the latch answers, not the oracle
        assert_eq!(crowd.verify_fact(&f).unwrap_err().attempts, 0);
        assert_eq!(crowd.stats().faults, faults_after_drop);
    }

    #[test]
    fn majority_early_stops_with_perfect_experts() {
        let experts: Vec<PerfectOracle> = (0..3).map(|_| PerfectOracle::new(ground())).collect();
        let mut crowd = MajorityCrowd::new(experts);
        let teams = schema().rel_id("Teams").unwrap();
        assert!(crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "EU"]))
            .unwrap());
        // early stop: only 2 of 3 experts answered
        assert_eq!(crowd.stats().closed_answers, 2);
        assert_eq!(crowd.stats().verify_fact_questions, 1);
    }

    #[test]
    fn majority_overrules_one_liar() {
        // experts 1 and 2 perfect, expert 0 always lies
        let experts: Vec<Box<dyn Oracle>> = vec![
            Box::new(ImperfectOracle::new(ground(), 1.0, 1)),
            Box::new(PerfectOracle::new(ground())),
            Box::new(PerfectOracle::new(ground())),
        ];
        let mut crowd = MajorityCrowd::new(experts);
        let teams = schema().rel_id("Teams").unwrap();
        assert!(crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "EU"]))
            .unwrap());
        // liar disagreed, so all 3 answered
        assert_eq!(crowd.stats().closed_answers, 3);
    }

    #[test]
    fn majority_degrades_quorum_when_an_expert_drops() {
        // expert 0 drops before answering anything; the panel of 3 must
        // keep working as a panel of 2
        let experts: Vec<Box<dyn Oracle>> = vec![
            Box::new(faulty("drop@0")),
            Box::new(faulty("")),
            Box::new(faulty("")),
        ];
        let mut crowd = MajorityCrowd::new(experts);
        let teams = schema().rel_id("Teams").unwrap();
        let f = Fact::new(teams, tup!["GER", "EU"]);
        assert!(crowd.verify_fact(&f).unwrap());
        assert_eq!(crowd.alive(), 2);
        assert!(crowd.stats().escalations >= 1);
        assert!(crowd.stats().faults >= 1);
        // degraded need = 2 of 2: both survivors answer
        let before = crowd.stats().closed_answers;
        assert!(crowd.verify_fact(&f).unwrap());
        assert_eq!(crowd.stats().closed_answers, before + 2);
    }

    #[test]
    fn fully_dropped_panel_surfaces_a_crowd_error() {
        let experts: Vec<FaultyOracle<PerfectOracle>> = (0..3).map(|_| faulty("drop@0")).collect();
        let mut crowd = MajorityCrowd::new(experts);
        let teams = schema().rel_id("Teams").unwrap();
        let f = Fact::new(teams, tup!["GER", "EU"]);
        let err = crowd.verify_fact(&f).unwrap_err();
        assert_eq!(err.last, OracleError::Dropped);
        assert_eq!(crowd.alive(), 0);
        // later questions fail fast via the quorum check
        assert!(crowd.verify_fact(&f).is_err());
        let q = parse_query(&schema(), "(x, k) :- Teams(x, k)").unwrap();
        assert!(crowd.complete(&q, &Assignment::new()).is_err());
        assert!(crowd.next_missing_answer(&q, &[]).is_err());
    }

    #[test]
    fn open_questions_escalate_past_failing_experts() {
        // the rotation starts at expert 0, which drops immediately; the
        // completion must come from a surviving panel member
        let experts: Vec<Box<dyn Oracle>> = vec![
            Box::new(faulty("drop@0")),
            Box::new(faulty("")),
            Box::new(faulty("")),
        ];
        let mut crowd = MajorityCrowd::new(experts);
        let q = parse_query(&schema(), "(x, k) :- Teams(x, k)").unwrap();
        let total = crowd.complete(&q, &Assignment::new()).unwrap().unwrap();
        assert_eq!(total.len(), 2);
        assert!(crowd.stats().escalations >= 1);
    }

    #[test]
    fn min_quorum_refuses_to_degrade_below_threshold() {
        let experts: Vec<Box<dyn Oracle>> = vec![
            Box::new(faulty("drop@0")),
            Box::new(faulty("drop@0")),
            Box::new(faulty("")),
        ];
        let mut crowd = MajorityCrowd::new(experts).with_policy(RetryPolicy {
            min_quorum: 2,
            ..RetryPolicy::default()
        });
        let teams = schema().rel_id("Teams").unwrap();
        let f = Fact::new(teams, tup!["GER", "EU"]);
        // first question: two experts drop, the third still answers
        assert!(crowd.verify_fact(&f).unwrap());
        assert_eq!(crowd.alive(), 1);
        // now below min_quorum=2 → refuse outright
        assert!(crowd.verify_fact(&f).is_err());
    }

    #[test]
    fn majority_completion_is_verified_with_closed_questions() {
        let experts: Vec<PerfectOracle> = (0..3).map(|_| PerfectOracle::new(ground())).collect();
        let mut crowd = MajorityCrowd::new(experts);
        let q = parse_query(&schema(), "(x, k) :- Teams(x, k)").unwrap();
        let total = crowd.complete(&q, &Assignment::new()).unwrap().unwrap();
        assert_eq!(total.len(), 2);
        let st = crowd.stats();
        // one atom in the body → 1 verification fact question
        assert_eq!(st.verify_fact_questions, 1);
        assert!(st.closed_answers >= 2);
        assert_eq!(st.filled_variables, 2);
    }

    #[test]
    fn majority_rejects_corrupt_completions() {
        // A completing expert that always corrupts; verifiers perfect. The
        // corrupted completion usually fails fact verification; either the
        // next (perfect) expert's completion is accepted, or (if the
        // corruption happens to be the true fact) it passes — in both cases
        // the result must be a valid completion w.r.t. the ground truth.
        let experts: Vec<Box<dyn Oracle>> = vec![
            Box::new(ImperfectOracle::new(ground(), 1.0, 5)),
            Box::new(PerfectOracle::new(ground())),
            Box::new(PerfectOracle::new(ground())),
        ];
        let mut crowd = MajorityCrowd::new(experts);
        let q = parse_query(&schema(), "(x, k) :- Teams(x, k)").unwrap();
        let total = crowd.complete(&q, &Assignment::new()).unwrap();
        let total = total.expect("a perfect expert is on the panel");
        // the accepted completion grounds to a true fact
        let fact = total.ground_atom(&q.atoms()[0]).unwrap();
        assert!(ground().contains(&fact));
    }

    #[test]
    fn majority_missing_answer_is_verified() {
        let experts: Vec<PerfectOracle> = (0..3).map(|_| PerfectOracle::new(ground())).collect();
        let mut crowd = MajorityCrowd::new(experts);
        let q = parse_query(&schema(), r#"(x) :- Teams(x, "EU")"#).unwrap();
        let t = crowd.next_missing_answer(&q, &[]).unwrap().unwrap();
        assert!(t == tup!["GER"] || t == tup!["ITA"]);
        assert_eq!(crowd.stats().verify_answer_questions, 1);
        assert_eq!(crowd.stats().missing_answers_provided, 1);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_panel_panics() {
        let _ = MajorityCrowd::<PerfectOracle>::new(vec![]);
    }
}
