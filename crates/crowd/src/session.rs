//! Crowd sessions: the typed interface the cleaning algorithms use.
//!
//! [`CrowdAccess`] wraps oracles behind typed ask-methods and records every
//! interaction in a [`CrowdStats`] ledger. Two implementations:
//!
//! * [`SingleExpert`] — one oracle, each question asked once (the perfect
//!   oracle setting of Figure 3);
//! * [`MajorityCrowd`] — a panel of experts with majority voting and early
//!   stop, plus closed-question re-verification of every open answer
//!   (Section 6.2, Figure 4). This is the "simple estimation method where
//!   each question is posed to a fixed-size sample of the crowd members"
//!   with majority aggregation; any other black-box aggregator could be
//!   slotted in the same way.

use qoco_data::{Fact, Tuple};
use qoco_engine::Assignment;
use qoco_query::ConjunctiveQuery;

use crate::oracle::Oracle;
use crate::question::Question;
use crate::stats::CrowdStats;

/// Report one crowd interaction to the telemetry layer: bump the
/// `crowd.questions_asked` counter and emit a timeline event. Inert (one
/// atomic load each) while telemetry is disabled.
fn tel_question(name: &'static str, detail: impl FnOnce() -> String) {
    qoco_telemetry::counter_add("crowd.questions_asked", 1);
    qoco_telemetry::event(name, detail);
}

/// The typed crowd interface used by the cleaning algorithms.
pub trait CrowdAccess {
    /// `TRUE(R(ā))?`
    fn verify_fact(&mut self, f: &Fact) -> bool;
    /// `TRUE(Q, t)?`
    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> bool;
    /// Is `α` satisfiable w.r.t. `q` and the ground truth?
    fn verify_satisfiable(&mut self, q: &ConjunctiveQuery, partial: &Assignment) -> bool;
    /// Composite question (Section 9 extension): are ALL of these facts
    /// true? The default asks each fact individually; sessions that support
    /// composite questions override it with a single interaction.
    fn verify_facts_all(&mut self, facts: &[Fact]) -> bool {
        facts.iter().all(|f| self.verify_fact(f))
    }
    /// `COMPL(α, Q)`: extend `α` into a total valid assignment, if possible.
    fn complete(&mut self, q: &ConjunctiveQuery, partial: &Assignment) -> Option<Assignment>;
    /// `COMPL(Q(D))`: one answer missing from `known`, or `None`.
    fn next_missing_answer(&mut self, q: &ConjunctiveQuery, known: &[Tuple]) -> Option<Tuple>;
    /// The interaction ledger so far.
    fn stats(&self) -> CrowdStats;
}

/// One oracle; every question asked exactly once.
pub struct SingleExpert<O: Oracle> {
    oracle: O,
    stats: CrowdStats,
}

impl<O: Oracle> SingleExpert<O> {
    /// Wrap an oracle.
    pub fn new(oracle: O) -> Self {
        SingleExpert {
            oracle,
            stats: CrowdStats::new(),
        }
    }

    /// The wrapped oracle.
    pub fn oracle(&self) -> &O {
        &self.oracle
    }
}

impl<O: Oracle> CrowdAccess for SingleExpert<O> {
    fn verify_fact(&mut self, f: &Fact) -> bool {
        self.stats.verify_fact_questions += 1;
        self.stats.closed_answers += 1;
        self.stats.verify_fact_crowd_answers += 1;
        tel_question("crowd.verify_fact", || format!("{f:?}"));
        self.oracle
            .answer(&Question::VerifyFact(f.clone()))
            .expect_bool()
    }

    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> bool {
        self.stats.verify_answer_questions += 1;
        self.stats.closed_answers += 1;
        self.stats.verify_answer_crowd_answers += 1;
        tel_question("crowd.verify_answer", || format!("{}({t})", q.name()));
        self.oracle
            .answer(&Question::VerifyAnswer {
                query: q.clone(),
                answer: t.clone(),
            })
            .expect_bool()
    }

    fn verify_satisfiable(&mut self, q: &ConjunctiveQuery, partial: &Assignment) -> bool {
        self.stats.satisfiable_questions += 1;
        self.stats.closed_answers += 1;
        self.stats.satisfiable_crowd_answers += 1;
        tel_question("crowd.verify_satisfiable", || {
            format!("{} with {} bound vars", q.name(), partial.len())
        });
        self.oracle
            .answer(&Question::VerifySatisfiable {
                query: q.clone(),
                partial: partial.clone(),
            })
            .expect_bool()
    }

    fn verify_facts_all(&mut self, facts: &[Fact]) -> bool {
        self.stats.composite_questions += 1;
        self.stats.closed_answers += 1;
        tel_question("crowd.verify_facts_all", || {
            format!("{} facts", facts.len())
        });
        self.oracle
            .answer(&Question::VerifyAllFacts(facts.to_vec()))
            .expect_bool()
    }

    fn complete(&mut self, q: &ConjunctiveQuery, partial: &Assignment) -> Option<Assignment> {
        self.stats.complete_tasks += 1;
        tel_question("crowd.complete", || {
            format!("{} from {} bound vars", q.name(), partial.len())
        });
        let reply = self
            .oracle
            .answer(&Question::Complete {
                query: q.clone(),
                partial: partial.clone(),
            })
            .expect_completion();
        if let Some(total) = &reply {
            let filled = total.len().saturating_sub(partial.len());
            self.stats.filled_variables += filled;
            self.stats.open_answer_variables += filled;
        }
        reply
    }

    fn next_missing_answer(&mut self, q: &ConjunctiveQuery, known: &[Tuple]) -> Option<Tuple> {
        self.stats.complete_result_tasks += 1;
        tel_question("crowd.complete_result", || {
            format!("{} with {} known answers", q.name(), known.len())
        });
        let reply = self
            .oracle
            .answer(&Question::CompleteResult {
                query: q.clone(),
                known: known.to_vec(),
            })
            .expect_missing();
        if reply.is_some() {
            self.stats.missing_answers_provided += 1;
            self.stats.open_answer_variables += q.head().len();
        }
        reply
    }

    fn stats(&self) -> CrowdStats {
        self.stats
    }
}

/// A fixed-size panel of experts with majority voting and early stop.
pub struct MajorityCrowd<O: Oracle> {
    experts: Vec<O>,
    stats: CrowdStats,
    /// round-robin cursor for open questions
    next_open: usize,
}

impl<O: Oracle> MajorityCrowd<O> {
    /// Build a majority-vote crowd. The panel size should be odd so a
    /// majority always exists.
    ///
    /// # Panics
    /// Panics on an empty panel.
    pub fn new(experts: Vec<O>) -> Self {
        assert!(!experts.is_empty(), "the crowd needs at least one expert");
        MajorityCrowd {
            experts,
            stats: CrowdStats::new(),
            next_open: 0,
        }
    }

    /// Number of experts on the panel.
    pub fn size(&self) -> usize {
        self.experts.len()
    }

    /// Ask a closed question to experts until a majority of the full panel
    /// agrees (e.g. 2 of 3), counting each individual answer.
    fn majority_bool(&mut self, q: &Question) -> bool {
        tel_question("crowd.majority_question", || {
            let kind = match q {
                Question::VerifyFact(_) => "verify_fact",
                Question::VerifyAllFacts(_) => "verify_facts_all",
                Question::VerifyAnswer { .. } => "verify_answer",
                Question::VerifySatisfiable { .. } => "verify_satisfiable",
                Question::Complete { .. } => "complete",
                Question::CompleteResult { .. } => "complete_result",
            };
            kind.to_string()
        });
        let need = self.experts.len() / 2 + 1;
        let mut yes = 0usize;
        let mut no = 0usize;
        for expert in self.experts.iter_mut() {
            let b = expert.answer(q).expect_bool();
            self.stats.closed_answers += 1;
            match q {
                Question::VerifyAnswer { .. } => self.stats.verify_answer_crowd_answers += 1,
                Question::VerifyFact(_) => self.stats.verify_fact_crowd_answers += 1,
                Question::VerifySatisfiable { .. } => self.stats.satisfiable_crowd_answers += 1,
                _ => {}
            }
            if b {
                yes += 1;
            } else {
                no += 1;
            }
            if yes >= need || no >= need {
                break;
            }
        }
        yes >= need
    }

    fn verify_completion(&mut self, q: &ConjunctiveQuery, total: &Assignment) -> bool {
        // Section 6.2: "if a set of tuples S is the answer to some question
        // COMPL(α,Q), the system poses the question TRUE(R(ā))? for each
        // tuple R(ā) ∈ S."
        for atom in q.atoms() {
            let Some(fact) = total.ground_atom(atom) else {
                return false;
            };
            self.stats.verify_fact_questions += 1;
            if !self.majority_bool(&Question::VerifyFact(fact)) {
                return false;
            }
        }
        // inequalities must hold on a valid assignment
        q.inequalities()
            .iter()
            .all(|e| total.check_inequality(e) == Some(true))
    }
}

impl<O: Oracle> CrowdAccess for MajorityCrowd<O> {
    fn verify_fact(&mut self, f: &Fact) -> bool {
        self.stats.verify_fact_questions += 1;
        self.majority_bool(&Question::VerifyFact(f.clone()))
    }

    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> bool {
        self.stats.verify_answer_questions += 1;
        self.majority_bool(&Question::VerifyAnswer {
            query: q.clone(),
            answer: t.clone(),
        })
    }

    fn verify_satisfiable(&mut self, q: &ConjunctiveQuery, partial: &Assignment) -> bool {
        self.stats.satisfiable_questions += 1;
        self.majority_bool(&Question::VerifySatisfiable {
            query: q.clone(),
            partial: partial.clone(),
        })
    }

    fn verify_facts_all(&mut self, facts: &[Fact]) -> bool {
        self.stats.composite_questions += 1;
        self.majority_bool(&Question::VerifyAllFacts(facts.to_vec()))
    }

    fn complete(&mut self, q: &ConjunctiveQuery, partial: &Assignment) -> Option<Assignment> {
        // Ask experts in rotation; accept the first completion whose facts
        // survive closed-question verification.
        for i in 0..self.experts.len() {
            let idx = (self.next_open + i) % self.experts.len();
            self.stats.complete_tasks += 1;
            tel_question("crowd.complete", || {
                format!("{} from {} bound vars", q.name(), partial.len())
            });
            let reply = self.experts[idx]
                .answer(&Question::Complete {
                    query: q.clone(),
                    partial: partial.clone(),
                })
                .expect_completion();
            let Some(total) = reply else { continue };
            let filled = total.len().saturating_sub(partial.len());
            self.stats.open_answer_variables += filled;
            self.stats.filled_variables += filled;
            if self.verify_completion(q, &total) {
                self.next_open = (idx + 1) % self.experts.len();
                return Some(total);
            }
        }
        self.next_open = (self.next_open + 1) % self.experts.len();
        None
    }

    fn next_missing_answer(&mut self, q: &ConjunctiveQuery, known: &[Tuple]) -> Option<Tuple> {
        for i in 0..self.experts.len() {
            let idx = (self.next_open + i) % self.experts.len();
            self.stats.complete_result_tasks += 1;
            tel_question("crowd.complete_result", || {
                format!("{} with {} known answers", q.name(), known.len())
            });
            let reply = self.experts[idx]
                .answer(&Question::CompleteResult {
                    query: q.clone(),
                    known: known.to_vec(),
                })
                .expect_missing();
            let Some(t) = reply else { continue };
            self.stats.open_answer_variables += q.head().len();
            // Section 6.2: verify with the closed question TRUE(Q, t)?
            self.stats.verify_answer_questions += 1;
            if self.majority_bool(&Question::VerifyAnswer {
                query: q.clone(),
                answer: t.clone(),
            }) {
                self.stats.missing_answers_provided += 1;
                self.next_open = (idx + 1) % self.experts.len();
                return Some(t);
            }
        }
        self.next_open = (self.next_open + 1) % self.experts.len();
        None
    }

    fn stats(&self) -> CrowdStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imperfect::ImperfectOracle;
    use crate::perfect::PerfectOracle;
    use qoco_data::{tup, Database, Schema};
    use qoco_query::parse_query;
    use std::sync::Arc;

    fn ground() -> Database {
        let s = Schema::builder()
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut g = Database::empty(s);
        for (c, k) in [("GER", "EU"), ("ITA", "EU"), ("BRA", "SA")] {
            g.insert_named("Teams", tup![c, k]).unwrap();
        }
        g
    }

    fn schema() -> Arc<Schema> {
        ground().schema().clone()
    }

    #[test]
    fn single_expert_counts_closed_questions() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        assert!(crowd.verify_fact(&Fact::new(teams, tup!["GER", "EU"])));
        assert!(!crowd.verify_fact(&Fact::new(teams, tup!["GER", "SA"])));
        let st = crowd.stats();
        assert_eq!(st.verify_fact_questions, 2);
        assert_eq!(st.closed_answers, 2);
    }

    #[test]
    fn single_expert_counts_filled_variables() {
        let g = ground();
        let q = parse_query(g.schema(), "(x, k) :- Teams(x, k)").unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let partial =
            Assignment::from_pairs([(qoco_query::Var::new("x"), qoco_data::Value::text("ITA"))]);
        let total = crowd.complete(&q, &partial).unwrap();
        assert_eq!(total.len(), 2);
        let st = crowd.stats();
        assert_eq!(st.complete_tasks, 1);
        assert_eq!(st.filled_variables, 1); // only k was filled
        assert_eq!(st.open_answer_variables, 1);
    }

    #[test]
    fn single_expert_missing_answer_counts_head_vars() {
        let g = ground();
        let q = parse_query(g.schema(), r#"(x) :- Teams(x, "EU")"#).unwrap();
        let mut crowd = SingleExpert::new(PerfectOracle::new(g));
        let t = crowd.next_missing_answer(&q, &[tup!["GER"]]).unwrap();
        assert_eq!(t, tup!["ITA"]);
        assert_eq!(crowd.stats().missing_answers_provided, 1);
        assert_eq!(crowd.stats().open_answer_variables, 1);
        assert_eq!(
            crowd.next_missing_answer(&q, &[tup!["GER"], tup!["ITA"]]),
            None
        );
    }

    #[test]
    fn majority_early_stops_with_perfect_experts() {
        let experts: Vec<PerfectOracle> = (0..3).map(|_| PerfectOracle::new(ground())).collect();
        let mut crowd = MajorityCrowd::new(experts);
        let teams = schema().rel_id("Teams").unwrap();
        assert!(crowd.verify_fact(&Fact::new(teams, tup!["GER", "EU"])));
        // early stop: only 2 of 3 experts answered
        assert_eq!(crowd.stats().closed_answers, 2);
        assert_eq!(crowd.stats().verify_fact_questions, 1);
    }

    #[test]
    fn majority_overrules_one_liar() {
        // experts 1 and 2 perfect, expert 0 always lies
        let experts: Vec<Box<dyn Oracle>> = vec![
            Box::new(ImperfectOracle::new(ground(), 1.0, 1)),
            Box::new(PerfectOracle::new(ground())),
            Box::new(PerfectOracle::new(ground())),
        ];
        let mut crowd = MajorityCrowd::new(experts);
        let teams = schema().rel_id("Teams").unwrap();
        assert!(crowd.verify_fact(&Fact::new(teams, tup!["GER", "EU"])));
        // liar disagreed, so all 3 answered
        assert_eq!(crowd.stats().closed_answers, 3);
    }

    #[test]
    fn majority_completion_is_verified_with_closed_questions() {
        let experts: Vec<PerfectOracle> = (0..3).map(|_| PerfectOracle::new(ground())).collect();
        let mut crowd = MajorityCrowd::new(experts);
        let q = parse_query(&schema(), "(x, k) :- Teams(x, k)").unwrap();
        let total = crowd.complete(&q, &Assignment::new()).unwrap();
        assert_eq!(total.len(), 2);
        let st = crowd.stats();
        // one atom in the body → 1 verification fact question
        assert_eq!(st.verify_fact_questions, 1);
        assert!(st.closed_answers >= 2);
        assert_eq!(st.filled_variables, 2);
    }

    #[test]
    fn majority_rejects_corrupt_completions() {
        // A completing expert that always corrupts; verifiers perfect. The
        // corrupted completion usually fails fact verification; either the
        // next (perfect) expert's completion is accepted, or (if the
        // corruption happens to be the true fact) it passes — in both cases
        // the result must be a valid completion w.r.t. the ground truth.
        let experts: Vec<Box<dyn Oracle>> = vec![
            Box::new(ImperfectOracle::new(ground(), 1.0, 5)),
            Box::new(PerfectOracle::new(ground())),
            Box::new(PerfectOracle::new(ground())),
        ];
        let mut crowd = MajorityCrowd::new(experts);
        let q = parse_query(&schema(), "(x, k) :- Teams(x, k)").unwrap();
        let total = crowd.complete(&q, &Assignment::new());
        let total = total.expect("a perfect expert is on the panel");
        // the accepted completion grounds to a true fact
        let fact = total.ground_atom(&q.atoms()[0]).unwrap();
        assert!(ground().contains(&fact));
    }

    #[test]
    fn majority_missing_answer_is_verified() {
        let experts: Vec<PerfectOracle> = (0..3).map(|_| PerfectOracle::new(ground())).collect();
        let mut crowd = MajorityCrowd::new(experts);
        let q = parse_query(&schema(), r#"(x) :- Teams(x, "EU")"#).unwrap();
        let t = crowd.next_missing_answer(&q, &[]).unwrap();
        assert!(t == tup!["GER"] || t == tup!["ITA"]);
        assert_eq!(crowd.stats().verify_answer_questions, 1);
        assert_eq!(crowd.stats().missing_answers_provided, 1);
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn empty_panel_panics() {
        let _ = MajorityCrowd::<PerfectOracle>::new(vec![]);
    }
}
