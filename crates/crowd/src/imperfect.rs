//! Imperfect experts (Section 6.2).
//!
//! "Humans, even if experts, are imperfect and may make mistakes." An
//! [`ImperfectOracle`] wraps a [`PerfectOracle`] and corrupts answers with a
//! configurable Bernoulli error rate:
//!
//! * boolean answers are flipped;
//! * completions are either withheld (claimed unsatisfiable) or corrupted in
//!   one binding;
//! * missing-answer reports are either withheld or perturbed.
//!
//! The RNG is injected, so experiments are reproducible by seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qoco_data::{Database, Tuple, Value};
use qoco_engine::Assignment;

use crate::fault::OracleError;
use crate::oracle::Oracle;
use crate::perfect::PerfectOracle;
use crate::question::{Answer, Question};

/// A crowd expert that errs with probability `error_rate` per question.
pub struct ImperfectOracle {
    inner: PerfectOracle,
    error_rate: f64,
    rng: StdRng,
    label: String,
    /// Values used to corrupt completions; drawn from the ground truth's
    /// active domain at construction.
    domain: Vec<Value>,
}

impl ImperfectOracle {
    /// Build an imperfect expert over `ground` with the given per-question
    /// error probability and RNG seed.
    ///
    /// # Panics
    /// Panics unless `0.0 ≤ error_rate ≤ 1.0`.
    pub fn new(ground: Database, error_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error_rate),
            "error rate must be a probability"
        );
        let domain = ground.active_domain();
        ImperfectOracle {
            inner: PerfectOracle::new(ground),
            error_rate,
            rng: StdRng::seed_from_u64(seed),
            label: format!("imperfect-expert-{seed}"),
            domain,
        }
    }

    /// Build with a custom label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    fn errs(&mut self) -> bool {
        self.rng.random::<f64>() < self.error_rate
    }

    fn random_domain_value(&mut self) -> Option<Value> {
        if self.domain.is_empty() {
            return None;
        }
        let i = self.rng.random_range(0..self.domain.len());
        Some(self.domain[i].clone())
    }

    fn corrupt_assignment(&mut self, a: &Assignment) -> Assignment {
        let pairs: Vec<_> = a.iter().map(|(v, val)| (v.clone(), val.clone())).collect();
        if pairs.is_empty() {
            return a.clone();
        }
        let idx = self.rng.random_range(0..pairs.len());
        let mut out = Assignment::new();
        for (i, (v, val)) in pairs.into_iter().enumerate() {
            let value = if i == idx {
                self.random_domain_value().unwrap_or(val)
            } else {
                val
            };
            out.bind(v, value);
        }
        out
    }

    fn corrupt_tuple(&mut self, t: &Tuple) -> Tuple {
        if t.arity() == 0 {
            return t.clone();
        }
        let idx = self.rng.random_range(0..t.arity());
        match self.random_domain_value() {
            Some(v) => t.with(idx, v),
            None => t.clone(),
        }
    }
}

impl Oracle for ImperfectOracle {
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError> {
        let truth = self.inner.answer(q)?;
        if !self.errs() {
            return Ok(truth);
        }
        Ok(match truth {
            Answer::Bool(b) => Answer::Bool(!b),
            Answer::Completion(Some(a)) => {
                if self.rng.random::<bool>() {
                    Answer::Completion(None) // fails to complete
                } else {
                    Answer::Completion(Some(self.corrupt_assignment(&a)))
                }
            }
            Answer::Completion(None) => Answer::Completion(None),
            Answer::MissingAnswer(Some(t)) => {
                if self.rng.random::<bool>() {
                    Answer::MissingAnswer(None)
                } else {
                    let corrupted = self.corrupt_tuple(&t);
                    Answer::MissingAnswer(Some(corrupted))
                }
            }
            Answer::MissingAnswer(None) => Answer::MissingAnswer(None),
        })
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Fact, Schema};

    fn ground() -> Database {
        let s = Schema::builder()
            .relation("T", &["a", "b"])
            .build()
            .unwrap();
        let mut g = Database::empty(s);
        for i in 0..20i64 {
            g.insert_named("T", tup![i, i + 100]).unwrap();
        }
        g
    }

    fn a_fact(g: &Database, present: bool) -> Question {
        let rel = g.schema().rel_id("T").unwrap();
        let t = if present { tup![0, 100] } else { tup![0, 0] };
        Question::VerifyFact(Fact::new(rel, t))
    }

    #[test]
    fn zero_error_rate_is_perfect() {
        let g = ground();
        let q_yes = a_fact(&g, true);
        let q_no = a_fact(&g, false);
        let mut o = ImperfectOracle::new(g, 0.0, 7);
        for _ in 0..50 {
            assert!(o.answer(&q_yes).unwrap().expect_bool());
            assert!(!o.answer(&q_no).unwrap().expect_bool());
        }
    }

    #[test]
    fn full_error_rate_always_flips_booleans() {
        let g = ground();
        let q_yes = a_fact(&g, true);
        let mut o = ImperfectOracle::new(g, 1.0, 7);
        for _ in 0..20 {
            assert!(!o.answer(&q_yes).unwrap().expect_bool());
        }
    }

    #[test]
    fn intermediate_error_rate_errs_sometimes() {
        let g = ground();
        let q_yes = a_fact(&g, true);
        let mut o = ImperfectOracle::new(g, 0.3, 42);
        let wrong = (0..500)
            .filter(|_| !o.answer(&q_yes).unwrap().expect_bool())
            .count();
        // ~150 expected; accept a broad band
        assert!((75..=225).contains(&wrong), "observed {wrong} errors");
    }

    #[test]
    fn same_seed_is_reproducible() {
        let g = ground();
        let q_yes = a_fact(&g, true);
        let run = |seed| {
            let mut o = ImperfectOracle::new(ground(), 0.5, seed);
            (0..50)
                .map(|_| o.answer(&q_yes).unwrap().expect_bool())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_error_rate_panics() {
        let _ = ImperfectOracle::new(ground(), 1.5, 0);
    }

    #[test]
    fn corrupted_completion_stays_total() {
        use qoco_query::parse_query;
        let g = ground();
        let q = parse_query(g.schema(), "(x, y) :- T(x, y)").unwrap();
        let mut o = ImperfectOracle::new(g, 1.0, 3);
        // with error rate 1, a completion is withheld or corrupted — if
        // returned, it must still bind both variables
        for _ in 0..20 {
            if let Some(a) = o
                .answer(&Question::Complete {
                    query: q.clone(),
                    partial: Assignment::new(),
                })
                .unwrap()
                .expect_completion()
            {
                assert_eq!(a.len(), 2);
            }
        }
    }
}

#[cfg(test)]
mod completion_branch_tests {
    use super::*;
    use qoco_data::{tup, Schema};
    use qoco_engine::{all_assignments, EvalOptions};
    use qoco_query::parse_query;

    fn ground() -> Database {
        let s = Schema::builder()
            .relation("T", &["a", "b"])
            .build()
            .unwrap();
        let mut g = Database::empty(s);
        for i in 0..20i64 {
            g.insert_named("T", tup![i, i + 100]).unwrap();
        }
        g
    }

    // The two error branches of the completion path (withhold vs corrupt)
    // are chosen by a coin flip after the error draw; at error rate 1.0 the
    // first question's branch is a pure function of the seed. Seeds 1 and 2
    // are pinned to one branch each, so both stay covered forever.
    const WITHHOLD_SEED: u64 = 1;
    const CORRUPT_SEED: u64 = 2;

    #[test]
    fn pinned_seed_withholds_the_completion() {
        let g = ground();
        let q = parse_query(g.schema(), "(x, y) :- T(x, y)").unwrap();
        let mut o = ImperfectOracle::new(g, 1.0, WITHHOLD_SEED);
        let reply = o
            .answer(&Question::Complete {
                query: q,
                partial: Assignment::new(),
            })
            .unwrap()
            .expect_completion();
        assert_eq!(
            reply, None,
            "seed {WITHHOLD_SEED} must take the withhold branch"
        );
    }

    #[test]
    fn pinned_seed_corrupts_the_completion() {
        let g = ground();
        let q = parse_query(g.schema(), "(x, y) :- T(x, y)").unwrap();
        let truth = all_assignments(&q, &g, &Assignment::new(), EvalOptions::default())
            .assignments
            .into_iter()
            .next()
            .unwrap();
        let mut o = ImperfectOracle::new(g, 1.0, CORRUPT_SEED);
        let reply = o
            .answer(&Question::Complete {
                query: q,
                partial: Assignment::new(),
            })
            .unwrap()
            .expect_completion()
            .expect("seed 2 must take the corrupt branch, not withhold");
        // corrupt, not fabricated: still total, still over the domain —
        // exactly one binding was rewritten to a (possibly equal) domain
        // value, so at most one differs from the truthful completion
        assert_eq!(reply.len(), truth.len());
        let differing = truth
            .iter()
            .filter(|(v, val)| reply.get(v) != Some(val))
            .count();
        assert!(differing <= 1, "one binding corrupted, {differing} differ");
    }

    #[test]
    fn pinned_seed_withholds_the_missing_answer() {
        let g = ground();
        let q = parse_query(g.schema(), "(x, y) :- T(x, y)").unwrap();
        let mut o = ImperfectOracle::new(g, 1.0, WITHHOLD_SEED);
        let reply = o
            .answer(&Question::CompleteResult {
                query: q,
                known: vec![],
            })
            .unwrap()
            .expect_missing();
        assert_eq!(
            reply, None,
            "seed {WITHHOLD_SEED} must withhold the missing answer"
        );
    }

    #[test]
    fn pinned_seed_perturbs_the_missing_answer() {
        let g = ground();
        let q = parse_query(g.schema(), "(x, y) :- T(x, y)").unwrap();
        let mut o = ImperfectOracle::new(g, 1.0, CORRUPT_SEED);
        let reply = o
            .answer(&Question::CompleteResult {
                query: q,
                known: vec![],
            })
            .unwrap()
            .expect_missing()
            .expect("seed 2 must perturb, not withhold");
        assert_eq!(reply.arity(), 2, "perturbation preserves arity");
    }
}
