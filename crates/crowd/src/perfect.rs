//! The perfect oracle: a simulator consulting the ground truth `D_G`.
//!
//! This is the paper's own measurement instrument: "a simulated perfect
//! oracle, namely an implemented oracle that consults with the ground truth
//! Soccer database" (Section 7.2) — and the paper reports that real perfect
//! experts gave results identical to it.

use qoco_data::Database;
use qoco_engine::{all_assignments, answer_set, is_satisfiable, EvalOptions};

use crate::fault::OracleError;
use crate::oracle::Oracle;
use crate::question::{Answer, Question};

/// A perfect oracle backed by a private copy of the ground truth database.
pub struct PerfectOracle {
    ground: Database,
    label: String,
}

impl PerfectOracle {
    /// Build a perfect oracle over `ground`.
    pub fn new(ground: Database) -> Self {
        PerfectOracle {
            ground,
            label: "perfect-oracle".to_string(),
        }
    }

    /// Build with a custom label.
    pub fn with_label(ground: Database, label: impl Into<String>) -> Self {
        PerfectOracle {
            ground,
            label: label.into(),
        }
    }

    /// Read access to the ground truth (used by tests and the ground-truth
    /// enumeration black-box).
    pub fn ground(&self) -> &Database {
        &self.ground
    }
}

impl Oracle for PerfectOracle {
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError> {
        Ok(match q {
            Question::VerifyFact(f) => Answer::Bool(self.ground.contains(f)),
            Question::VerifyAllFacts(facts) => {
                Answer::Bool(facts.iter().all(|f| self.ground.contains(f)))
            }
            Question::VerifyAnswer { query, answer } => {
                let answers = answer_set(query, &self.ground);
                Answer::Bool(answers.contains(answer))
            }
            Question::VerifySatisfiable { query, partial } => {
                Answer::Bool(is_satisfiable(query, &self.ground, partial))
            }
            Question::Complete { query, partial } => {
                // the minimal (in assignment order) valid extension keeps
                // the simulator deterministic
                let res = all_assignments(query, &self.ground, partial, EvalOptions::default());
                Answer::Completion(res.assignments.into_iter().next())
            }
            Question::CompleteResult { query, known } => {
                let answers = answer_set(query, &self.ground);
                let missing = answers.into_iter().find(|t| !known.contains(t));
                Answer::MissingAnswer(missing)
            }
        })
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Fact, Schema};
    use qoco_engine::Assignment;
    use qoco_query::parse_query;

    fn ground() -> Database {
        let s = Schema::builder()
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut g = Database::empty(s);
        for (c, k) in [("GER", "EU"), ("ITA", "EU"), ("BRA", "SA")] {
            g.insert_named("Teams", tup![c, k]).unwrap();
        }
        g
    }

    #[test]
    fn verify_fact_consults_ground_truth() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        let mut o = PerfectOracle::new(g);
        assert_eq!(
            o.answer(&Question::VerifyFact(Fact::new(teams, tup!["GER", "EU"]))),
            Ok(Answer::Bool(true))
        );
        assert_eq!(
            o.answer(&Question::VerifyFact(Fact::new(teams, tup!["BRA", "EU"]))),
            Ok(Answer::Bool(false))
        );
    }

    #[test]
    fn verify_answer_evaluates_query_on_ground_truth() {
        let g = ground();
        let q = parse_query(g.schema(), r#"(x) :- Teams(x, "EU")"#).unwrap();
        let mut o = PerfectOracle::new(g);
        assert!(o
            .answer(&Question::VerifyAnswer {
                query: q.clone(),
                answer: tup!["ITA"]
            })
            .unwrap()
            .expect_bool());
        assert!(!o
            .answer(&Question::VerifyAnswer {
                query: q,
                answer: tup!["BRA"]
            })
            .unwrap()
            .expect_bool());
    }

    #[test]
    fn satisfiability_and_completion() {
        let g = ground();
        let q = parse_query(g.schema(), r#"(x, k) :- Teams(x, k)"#).unwrap();
        let mut o = PerfectOracle::new(g);
        let partial =
            Assignment::from_pairs([(qoco_query::Var::new("x"), qoco_data::Value::text("ITA"))]);
        assert!(o
            .answer(&Question::VerifySatisfiable {
                query: q.clone(),
                partial: partial.clone()
            })
            .unwrap()
            .expect_bool());
        let completion = o
            .answer(&Question::Complete {
                query: q.clone(),
                partial,
            })
            .unwrap()
            .expect_completion()
            .unwrap();
        assert_eq!(
            completion.get(&qoco_query::Var::new("k")),
            Some(&qoco_data::Value::text("EU"))
        );
        // unsatisfiable partial → None
        let bad =
            Assignment::from_pairs([(qoco_query::Var::new("x"), qoco_data::Value::text("FRA"))]);
        assert!(!o
            .answer(&Question::VerifySatisfiable {
                query: q.clone(),
                partial: bad.clone()
            })
            .unwrap()
            .expect_bool());
        assert_eq!(
            o.answer(&Question::Complete {
                query: q,
                partial: bad
            })
            .unwrap()
            .expect_completion(),
            None
        );
    }

    #[test]
    fn complete_result_reports_one_missing_answer_then_none() {
        let g = ground();
        let q = parse_query(g.schema(), r#"(x) :- Teams(x, "EU")"#).unwrap();
        let mut o = PerfectOracle::new(g);
        let known = vec![tup!["GER"]];
        let miss = o
            .answer(&Question::CompleteResult {
                query: q.clone(),
                known,
            })
            .unwrap()
            .expect_missing();
        assert_eq!(miss, Some(tup!["ITA"]));
        let all_known = vec![tup!["GER"], tup!["ITA"]];
        let done = o
            .answer(&Question::CompleteResult {
                query: q,
                known: all_known,
            })
            .unwrap()
            .expect_missing();
        assert_eq!(done, None);
    }

    #[test]
    fn completion_is_deterministic() {
        let g = ground();
        let q = parse_query(g.schema(), r#"(x, k) :- Teams(x, k)"#).unwrap();
        let mut o = PerfectOracle::new(g);
        let c1 = o
            .answer(&Question::Complete {
                query: q.clone(),
                partial: Assignment::new(),
            })
            .unwrap()
            .expect_completion();
        let c2 = o
            .answer(&Question::Complete {
                query: q,
                partial: Assignment::new(),
            })
            .unwrap()
            .expect_completion();
        assert_eq!(c1, c2);
    }

    #[test]
    fn label_round_trips() {
        let o = PerfectOracle::with_label(ground(), "alice");
        assert_eq!(o.label(), "alice");
    }
}
