//! A write-ahead answer journal for crash-resumable cleaning sessions.
//!
//! [`JournalOracle`] decorates any [`Oracle`] and logs every outcome —
//! delivered answers *and* faults — **before** the caller sees it. If the
//! process dies at any question boundary, the journal on disk holds exactly
//! the outcomes the session consumed, so a resumed run can replay them and
//! continue at the next question.
//!
//! ## Replay is lockstep
//!
//! During replay the inner oracle is *still asked* every question, and the
//! journaled outcome is returned instead of the live one (after comparing
//! the two — mismatches are counted as divergences, and the journal wins,
//! because the journal is what the original session consumed). Lockstep
//! matters for stateful oracles: [`crate::ImperfectOracle`] and
//! [`crate::SamplingOracle`] advance a seeded RNG stream per answer, so
//! replaying *through* them leaves the stream exactly where the original
//! run left it — the first live question after the journal runs dry gets a
//! bit-identical answer to the one the uninterrupted run would have
//! produced. The cleaning algorithms are deterministic functions of the
//! answer sequence, so the final edits are bit-identical too.
//!
//! ## Format
//!
//! One record per line, `seq \t kind \t outcome` (tab-separated), flushed
//! per answer:
//!
//! ```text
//! 1 <TAB> verify_fact     <TAB> ok:bool:true
//! 2 <TAB> complete        <TAB> ok:completion:x=s:GER,k=s:EU
//! 3 <TAB> complete        <TAB> ok:completion:-
//! 4 <TAB> complete_result <TAB> ok:missing:s:ITA|i:1990
//! 5 <TAB> verify_fact     <TAB> err:timeout
//! ```
//!
//! Values carry an `s:`/`i:` type tag; names and values are percent-escaped
//! so tabs, newlines and the separator characters cannot corrupt a record.
//! When telemetry is on, a fourth tab-separated field `d=<id>` tags the
//! record with the decision id that caused the question — older readers
//! split on the first three tabs and never see it, and replay ignores it
//! when checking for divergence, so journals written with and without
//! provenance interoperate. A fifth field `r=<request-id>` (percent-escaped)
//! tags the record with the HTTP request that drove the machine step, under
//! the same rules: optional, ignored by older readers, excluded from the
//! divergence comparison.
//! A truncated final line (the crash happened mid-write) is ignored on
//! load. The journal records one oracle's global answer sequence — wrap
//! each panel member of a sequential session with [`Journal::wrap`] so they
//! share one sequence; the parallel crowd (`ParallelMajorityCrowd`) is not
//! journalable because its interleaving is scheduler-dependent.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use qoco_data::{Tuple, Value};
use qoco_engine::Assignment;
use qoco_query::Var;

use crate::fault::OracleError;
use crate::oracle::Oracle;
use crate::question::{Answer, Question, QuestionKind};

/// One journaled outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// 1-based global sequence number.
    pub seq: u64,
    /// The kind of question that was asked.
    pub kind: QuestionKind,
    /// What the oracle produced: an answer or a fault.
    pub outcome: Result<Answer, OracleError>,
    /// The telemetry decision id active when the question was asked (an
    /// optional fourth `d=<id>` field on the wire — absent when telemetry
    /// was off, ignored by older readers, and *excluded* from the lockstep
    /// divergence comparison so journals with and without provenance
    /// interoperate).
    pub decision: Option<u64>,
    /// The HTTP request id active when the question was asked (an optional
    /// fifth `r=<id>` field on the wire, percent-escaped; same rules as
    /// `decision`: absent outside the serve layer, ignored by older
    /// readers, excluded from divergence).
    pub request: Option<String>,
}

impl JournalRecord {
    /// Serialize this record as one journal line (newline-terminated, the
    /// exact bytes [`JournalOracle`] writes). Exposed so external writers
    /// — the serve session store appends answer records outside any
    /// oracle — produce journals [`Journal::parse`] reads back.
    pub fn to_line(&self) -> String {
        serialize_record(self)
    }

    /// Parse one journal line (without its trailing newline).
    pub fn parse_line(line: &str) -> Result<JournalRecord, String> {
        parse_record(line)
    }
}

struct JournalInner {
    /// Where appended records go (`None` for a purely in-memory journal).
    writer: Option<Box<dyn Write + Send>>,
    /// Records still to be replayed before going live.
    replay: VecDeque<JournalRecord>,
    /// Every outcome seen so far (replayed and live), in order.
    log: Vec<JournalRecord>,
    seq: u64,
    replayed: u64,
    divergences: u64,
    write_errors: u64,
}

/// A shared handle to one session journal. Clone it freely: all clones
/// (and all oracles wrapped through [`Journal::wrap`]) share one global
/// sequence, one replay queue and one writer.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Mutex<JournalInner>>,
}

impl Journal {
    fn build(writer: Option<Box<dyn Write + Send>>, replay: Vec<JournalRecord>) -> Journal {
        Journal {
            inner: Arc::new(Mutex::new(JournalInner {
                writer,
                replay: replay.into(),
                log: Vec::new(),
                seq: 0,
                replayed: 0,
                divergences: 0,
                write_errors: 0,
            })),
        }
    }

    /// A fresh in-memory journal (no file): records accumulate in
    /// [`Journal::records`]. Used by tests and crash simulations.
    pub fn recording() -> Journal {
        Journal::build(None, Vec::new())
    }

    /// A fresh journal appending to `writer`.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Journal {
        Journal::build(Some(writer), Vec::new())
    }

    /// A fresh journal writing to a new file at `path` (truncates).
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let file = std::fs::File::create(path)?;
        Ok(Journal::to_writer(Box::new(file)))
    }

    /// Resume from in-memory records: the queue is replayed first, then the
    /// journal goes live (appending to `writer` if one is given).
    pub fn replaying(records: Vec<JournalRecord>) -> Journal {
        Journal::build(None, records)
    }

    /// Resume from a journal file: replay its records, then continue the
    /// session appending to the same file. A torn final line (crash
    /// mid-write) is truncated away so new records start on a clean line.
    pub fn resume(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        use std::io::Seek;
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let records = Journal::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let keep = text.rfind('\n').map(|p| p + 1).unwrap_or(0);
        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(keep as u64)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Journal::build(Some(Box::new(file)), records))
    }

    /// Parse a journal file. A truncated final line (crash mid-write) is
    /// dropped; a corrupt line anywhere else is an error.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Vec<JournalRecord>> {
        let text = std::fs::read_to_string(path)?;
        Journal::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Parse journal text; see [`Journal::load`].
    pub fn parse(text: &str) -> Result<Vec<JournalRecord>, String> {
        let complete = match text.rfind('\n') {
            Some(pos) => &text[..pos],
            // no terminated line at all: everything is a crash artifact
            None => return Ok(Vec::new()),
        };
        let mut out = Vec::new();
        for (i, line) in complete.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            out.push(parse_record(line).map_err(|e| format!("journal line {}: {e}", i + 1))?);
        }
        Ok(out)
    }

    /// Wrap an oracle so its every outcome flows through this journal.
    pub fn wrap<O: Oracle>(&self, oracle: O) -> JournalOracle<O> {
        JournalOracle {
            inner: oracle,
            journal: self.clone(),
        }
    }

    /// All outcomes seen so far (replayed and live), in sequence order.
    pub fn records(&self) -> Vec<JournalRecord> {
        self.lock().log.clone()
    }

    /// The global sequence counter (total questions that flowed through).
    pub fn seq(&self) -> u64 {
        self.lock().seq
    }

    /// How many records were served from the replay queue.
    pub fn replayed(&self) -> u64 {
        self.lock().replayed
    }

    /// Replayed outcomes that did not match what the inner oracle produced
    /// in lockstep. Zero on a faithful resume; anything else means the
    /// inputs (database, seeds, fault plan) changed between runs.
    pub fn divergences(&self) -> u64 {
        self.lock().divergences
    }

    /// Records still queued for replay.
    pub fn pending_replay(&self) -> usize {
        self.lock().replay.len()
    }

    /// Journal appends that failed at the I/O layer (short write, full
    /// disk). Each one was surfaced to the session as
    /// [`OracleError::Dropped`] — the write-ahead invariant (nothing is
    /// consumed that is not on disk) is kept by *failing the answer*, so
    /// the session degrades to a PARTIAL REPORT instead of silently
    /// consuming an unjournaled outcome.
    pub fn write_errors(&self) -> u64 {
        self.lock().write_errors
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalInner> {
        // a poisoned journal is still readable; the data is plain
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The journaling oracle decorator; see the module docs.
pub struct JournalOracle<O: Oracle> {
    inner: O,
    journal: Journal,
}

impl<O: Oracle> JournalOracle<O> {
    /// The journal handle this oracle writes through.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

impl<O: Oracle> Oracle for JournalOracle<O> {
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError> {
        // Lockstep: always ask the inner oracle, even during replay, so
        // stateful oracles advance exactly as in the original run.
        let live = self.inner.answer(q);
        // Provenance: the core algorithms open a decision before asking,
        // so the thread-local id is still set here. Replay re-tags with
        // the *current* decision id (the resumed run re-derives identical
        // ids), keeping the in-memory log consistent with a fresh run.
        let decision = qoco_telemetry::current_decision_id();
        // Same contract for the serve layer's request id: the replaying
        // run re-tags with whatever request is driving *this* step.
        let request = qoco_telemetry::current_request_id();
        let mut inner = self.journal.lock();
        inner.seq += 1;
        let seq = inner.seq;
        if let Some(rec) = inner.replay.pop_front() {
            inner.replayed += 1;
            // decision and request ids are provenance metadata, not part
            // of lockstep
            if rec.kind != q.kind() || rec.outcome != live {
                inner.divergences += 1;
                qoco_telemetry::counter_add("journal.divergences", 1);
            }
            // The journal wins: these outcomes are what the original
            // session consumed.
            let outcome = rec.outcome.clone();
            inner.log.push(JournalRecord {
                seq,
                kind: rec.kind,
                outcome: outcome.clone(),
                decision,
                request,
            });
            return outcome;
        }
        let record = JournalRecord {
            seq,
            kind: q.kind(),
            outcome: live.clone(),
            decision,
            request,
        };
        // Write-ahead: append + flush before the caller consumes the
        // outcome, so a crash at any question boundary leaves the journal
        // covering everything the session saw. If the append itself fails
        // (short write, full disk) the outcome must NOT be consumed — a
        // later resume could not replay it — so the answer is dropped:
        // the caller sees `Err(Dropped)` and the session degrades to a
        // PARTIAL REPORT through the ordinary fault machinery.
        if let Some(w) = inner.writer.as_mut() {
            let line = serialize_record(&record);
            let wrote = w.write_all(line.as_bytes()).and_then(|_| w.flush());
            if wrote.is_err() {
                inner.write_errors += 1;
                qoco_telemetry::counter_add("journal.write_errors", 1);
                let failed = JournalRecord {
                    outcome: Err(OracleError::Dropped),
                    ..record
                };
                inner.log.push(failed);
                return Err(OracleError::Dropped);
            }
        }
        inner.log.push(record);
        live
    }

    fn label(&self) -> String {
        format!("journal({})", self.inner.label())
    }
}

// ---------------------------------------------------------------------------
// wire format

/// Percent-escape the characters that have structural meaning in a record.
fn escape(s: &str, out: &mut String) {
    for b in s.bytes() {
        match b {
            b'%' | b'\t' | b'\n' | b'\r' | b',' | b'=' | b'|' | b':' => {
                let _ = write!(out, "%{b:02X}");
            }
            _ => out.push(b as char),
        }
    }
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {s:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| format!("bad escape in {s:?}"))?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape in {s:?}"))?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("non-utf8 payload in {s:?}"))
}

fn push_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "i:{i}");
        }
        Value::Text(s) => {
            out.push_str("s:");
            escape(s, out);
        }
    }
}

fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(i) = s.strip_prefix("i:") {
        i.parse::<i64>()
            .map(Value::int)
            .map_err(|_| format!("bad int value {s:?}"))
    } else if let Some(t) = s.strip_prefix("s:") {
        Ok(Value::text(unescape(t)?))
    } else {
        Err(format!("value {s:?} is missing its type tag"))
    }
}

fn serialize_record(r: &JournalRecord) -> String {
    let mut out = format!("{}\t{}\t", r.seq, r.kind.as_str());
    match &r.outcome {
        Err(e) => {
            let _ = write!(out, "err:{}", e.as_str());
        }
        Ok(Answer::Bool(b)) => {
            let _ = write!(out, "ok:bool:{b}");
        }
        Ok(Answer::Completion(None)) => out.push_str("ok:completion:-"),
        Ok(Answer::Completion(Some(a))) => {
            out.push_str("ok:completion:");
            // BTreeMap-backed: iteration order is canonical
            for (i, (var, value)) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape(var.name(), &mut out);
                out.push('=');
                push_value(value, &mut out);
            }
        }
        Ok(Answer::MissingAnswer(None)) => out.push_str("ok:missing:-"),
        Ok(Answer::MissingAnswer(Some(t))) => {
            out.push_str("ok:missing:");
            for (i, value) in t.values().iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                push_value(value, &mut out);
            }
        }
    }
    if let Some(d) = r.decision {
        let _ = write!(out, "\td={d}");
    }
    if let Some(rid) = r.request.as_deref().filter(|r| !r.is_empty()) {
        out.push_str("\tr=");
        escape(rid, &mut out);
    }
    out.push('\n');
    out
}

fn parse_record(line: &str) -> Result<JournalRecord, String> {
    let mut parts = line.splitn(4, '\t');
    let seq: u64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad sequence number in {line:?}"))?;
    let kind = parts
        .next()
        .and_then(QuestionKind::parse)
        .ok_or_else(|| format!("bad question kind in {line:?}"))?;
    let outcome = parts
        .next()
        .ok_or_else(|| format!("missing outcome in {line:?}"))?;
    let outcome = if let Some(err) = outcome.strip_prefix("err:") {
        Err(OracleError::parse(err).ok_or_else(|| format!("bad error tag {err:?}"))?)
    } else if let Some(b) = outcome.strip_prefix("ok:bool:") {
        Ok(Answer::Bool(
            b.parse().map_err(|_| format!("bad bool payload {b:?}"))?,
        ))
    } else if let Some(payload) = outcome.strip_prefix("ok:completion:") {
        if payload == "-" {
            Ok(Answer::Completion(None))
        } else {
            let mut a = Assignment::new();
            for pair in payload.split(',').filter(|p| !p.is_empty()) {
                let (var, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad binding {pair:?}"))?;
                a.bind(Var::new(unescape(var)?), parse_value(value)?);
            }
            Ok(Answer::Completion(Some(a)))
        }
    } else if let Some(payload) = outcome.strip_prefix("ok:missing:") {
        if payload == "-" {
            Ok(Answer::MissingAnswer(None))
        } else {
            let values: Result<Vec<Value>, String> = payload.split('|').map(parse_value).collect();
            Ok(Answer::MissingAnswer(Some(Tuple::new(values?))))
        }
    } else {
        return Err(format!("unknown outcome {outcome:?}"));
    };
    // The provenance tail: optional `d=<id>`, then optional `r=<id>`, in
    // that order, nothing else. (`splitn(4)` leaves the whole tail in one
    // chunk, so split it on tabs here.)
    let mut decision = None;
    let mut request: Option<String> = None;
    if let Some(tail) = parts.next() {
        for field in tail.split('\t') {
            if let Some(d) = field.strip_prefix("d=") {
                if decision.is_some() || request.is_some() {
                    return Err(format!("misordered provenance field {field:?} in {line:?}"));
                }
                decision = Some(
                    d.parse::<u64>()
                        .map_err(|_| format!("bad decision field {field:?}"))?,
                );
            } else if let Some(rid) = field.strip_prefix("r=") {
                if request.is_some() {
                    return Err(format!("duplicate request field {field:?} in {line:?}"));
                }
                if rid.is_empty() {
                    return Err(format!("empty request field in {line:?}"));
                }
                request = Some(unescape(rid)?);
            } else {
                return Err(format!("bad decision field {field:?}"));
            }
        }
    }
    Ok(JournalRecord {
        seq,
        kind,
        outcome,
        decision,
        request,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyOracle};
    use crate::imperfect::ImperfectOracle;
    use crate::perfect::PerfectOracle;
    use qoco_data::{tup, Database, Fact, Schema};
    use qoco_query::parse_query;

    fn ground() -> Database {
        let s = Schema::builder()
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut g = Database::empty(s);
        for (c, k) in [("GER", "EU"), ("ITA", "EU"), ("BRA", "SA")] {
            g.insert_named("Teams", tup![c, k]).unwrap();
        }
        g
    }

    fn sample_records() -> Vec<JournalRecord> {
        let q = parse_query(ground().schema(), "(x, k) :- Teams(x, k)").unwrap();
        let mut oracle = Journal::recording().wrap(PerfectOracle::new(ground()));
        let teams = ground().schema().rel_id("Teams").unwrap();
        oracle
            .answer(&Question::VerifyFact(Fact::new(teams, tup!["GER", "EU"])))
            .unwrap();
        oracle
            .answer(&Question::Complete {
                query: q.clone(),
                partial: Assignment::new(),
            })
            .unwrap();
        oracle
            .answer(&Question::CompleteResult {
                query: q,
                known: vec![],
            })
            .unwrap();
        oracle.journal().records()
    }

    #[test]
    fn every_outcome_shape_round_trips_through_text() {
        let mut records = sample_records();
        records.push(JournalRecord {
            seq: 4,
            kind: QuestionKind::Complete,
            outcome: Ok(Answer::Completion(None)),
            decision: None,
            request: None,
        });
        records.push(JournalRecord {
            seq: 5,
            kind: QuestionKind::CompleteResult,
            outcome: Ok(Answer::MissingAnswer(None)),
            decision: None,
            request: None,
        });
        records.push(JournalRecord {
            seq: 6,
            kind: QuestionKind::VerifyFact,
            outcome: Err(OracleError::Timeout),
            decision: None,
            request: None,
        });
        records.push(JournalRecord {
            seq: 7,
            kind: QuestionKind::VerifyAnswer,
            outcome: Ok(Answer::Bool(false)),
            decision: Some(42),
            request: None,
        });
        // request provenance alone, and together with a decision id
        records.push(JournalRecord {
            seq: 8,
            kind: QuestionKind::VerifyFact,
            outcome: Ok(Answer::Bool(true)),
            decision: None,
            request: Some("qr-3".to_string()),
        });
        records.push(JournalRecord {
            seq: 9,
            kind: QuestionKind::VerifyFact,
            outcome: Ok(Answer::Bool(true)),
            decision: Some(7),
            request: Some("trace me=hostile\tid".to_string()),
        });
        let text: String = records.iter().map(serialize_record).collect();
        let parsed = Journal::parse(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn hostile_values_survive_escaping() {
        let rec = JournalRecord {
            seq: 1,
            kind: QuestionKind::CompleteResult,
            outcome: Ok(Answer::MissingAnswer(Some(Tuple::new(vec![
                Value::text("a|b,c=d:e\tf\ng%h"),
                Value::int(-7),
            ])))),
            decision: None,
            request: Some("id%with|every:bad,char=\n".to_string()),
        };
        let text = serialize_record(&rec);
        assert_eq!(text.matches('\n').count(), 1, "payload newline escaped");
        let parsed = Journal::parse(&text).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn truncated_final_line_is_ignored() {
        let records = sample_records();
        let mut text: String = records.iter().map(serialize_record).collect();
        // simulate a crash mid-write of the next record
        text.push_str("4\tverify_fact\tok:bo");
        let parsed = Journal::parse(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn corrupt_interior_line_is_an_error() {
        assert!(Journal::parse("1\tverify_fact\tok:nonsense\n").is_err());
        assert!(Journal::parse("x\tverify_fact\tok:bool:true\n").is_err());
        assert!(Journal::parse("1\tverify_fact\tok:bool:true\td=\n").is_err());
        assert!(Journal::parse("1\tverify_fact\tok:bool:true\tjunk\n").is_err());
        // request-field strictness: empty, duplicated, or misordered
        // provenance fields are corruption, not extensions
        assert!(Journal::parse("1\tverify_fact\tok:bool:true\tr=\n").is_err());
        assert!(Journal::parse("1\tverify_fact\tok:bool:true\tr=a\tr=b\n").is_err());
        assert!(Journal::parse("1\tverify_fact\tok:bool:true\tr=a\td=1\n").is_err());
        assert!(Journal::parse("1\tverify_fact\tok:bool:true\td=1\tr=a\tx\n").is_err());
        // and the well-formed shapes parse
        assert!(Journal::parse("1\tverify_fact\tok:bool:true\td=1\tr=a\n").is_ok());
        assert!(Journal::parse("1\tverify_fact\tok:bool:true\tr=qr-9\n").is_ok());
    }

    #[test]
    fn replay_returns_journaled_outcomes_and_counts_divergences() {
        let records = sample_records();
        let journal = Journal::replaying(records.clone());
        let mut oracle = journal.wrap(PerfectOracle::new(ground()));
        let teams = ground().schema().rel_id("Teams").unwrap();
        let q = parse_query(ground().schema(), "(x, k) :- Teams(x, k)").unwrap();
        // same questions in the same order → same outcomes, no divergence
        assert_eq!(
            oracle.answer(&Question::VerifyFact(Fact::new(teams, tup!["GER", "EU"]))),
            records[0].outcome
        );
        assert_eq!(
            oracle.answer(&Question::Complete {
                query: q.clone(),
                partial: Assignment::new(),
            }),
            records[1].outcome
        );
        assert_eq!(
            oracle.answer(&Question::CompleteResult {
                query: q.clone(),
                known: vec![],
            }),
            records[2].outcome
        );
        assert_eq!(journal.replayed(), 3);
        assert_eq!(journal.divergences(), 0);
        assert_eq!(journal.pending_replay(), 0);
        // the journal has run dry: the next answer is live
        assert!(oracle
            .answer(&Question::VerifyFact(Fact::new(teams, tup!["BRA", "SA"])))
            .is_ok());
        assert_eq!(journal.seq(), 4);
    }

    #[test]
    fn divergent_replay_is_detected_but_journal_wins() {
        let records = vec![JournalRecord {
            seq: 1,
            kind: QuestionKind::VerifyFact,
            outcome: Ok(Answer::Bool(false)), // the live oracle will say true
            decision: None,
            request: None,
        }];
        let journal = Journal::replaying(records);
        let mut oracle = journal.wrap(PerfectOracle::new(ground()));
        let teams = ground().schema().rel_id("Teams").unwrap();
        let out = oracle
            .answer(&Question::VerifyFact(Fact::new(teams, tup!["GER", "EU"])))
            .unwrap();
        assert_eq!(out, Answer::Bool(false), "the journal's outcome is served");
        assert_eq!(journal.divergences(), 1);
    }

    #[test]
    fn faults_are_journaled_and_replayed() {
        let plan: FaultPlan = "fail@2=timeout".parse().unwrap();
        let teams = ground().schema().rel_id("Teams").unwrap();
        let f = Fact::new(teams, tup!["GER", "EU"]);
        let journal = Journal::recording();
        let mut oracle = journal.wrap(FaultyOracle::new(
            PerfectOracle::new(ground()),
            plan.clone(),
        ));
        assert!(oracle.answer(&Question::VerifyFact(f.clone())).is_ok());
        assert_eq!(
            oracle.answer(&Question::VerifyFact(f.clone())),
            Err(OracleError::Timeout)
        );
        let records = journal.records();
        assert_eq!(records[1].outcome, Err(OracleError::Timeout));
        // replay through a fresh identical stack: lockstep, no divergence
        let journal2 = Journal::replaying(records);
        let mut oracle2 = journal2.wrap(FaultyOracle::new(PerfectOracle::new(ground()), plan));
        assert!(oracle2.answer(&Question::VerifyFact(f.clone())).is_ok());
        assert_eq!(
            oracle2.answer(&Question::VerifyFact(f)),
            Err(OracleError::Timeout)
        );
        assert_eq!(journal2.divergences(), 0);
    }

    #[test]
    fn lockstep_replay_leaves_stateful_oracles_in_position() {
        // drive an imperfect oracle (stream RNG) for 20 questions, journal
        // them, then resume after 10: answers 11..20 must be identical
        let teams = ground().schema().rel_id("Teams").unwrap();
        let f = Fact::new(teams, tup!["GER", "EU"]);
        let q = Question::VerifyFact(f);
        let full_journal = Journal::recording();
        let mut full = full_journal.wrap(ImperfectOracle::new(ground(), 0.5, 42));
        let full_answers: Vec<_> = (0..20).map(|_| full.answer(&q)).collect();
        let records = full_journal.records();
        let resumed_journal = Journal::replaying(records[..10].to_vec());
        let mut resumed = resumed_journal.wrap(ImperfectOracle::new(ground(), 0.5, 42));
        let resumed_answers: Vec<_> = (0..20).map(|_| resumed.answer(&q)).collect();
        assert_eq!(full_answers, resumed_answers);
        assert_eq!(resumed_journal.divergences(), 0);
        assert_eq!(resumed_journal.replayed(), 10);
    }

    /// Succeeds for the first `good` appends, then fails every write —
    /// an ENOSPC-style mid-session I/O fault.
    struct FailingWriter {
        good: usize,
        written: Vec<u8>,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.good == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "no space left on device (simulated)",
                ));
            }
            self.good -= 1;
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failed_append_drops_the_answer_instead_of_consuming_it() {
        let teams = ground().schema().rel_id("Teams").unwrap();
        let q = Question::VerifyFact(Fact::new(teams, tup!["GER", "EU"]));
        let journal = Journal::to_writer(Box::new(FailingWriter {
            good: 2,
            written: Vec::new(),
        }));
        let mut oracle = journal.wrap(PerfectOracle::new(ground()));
        assert_eq!(oracle.answer(&q), Ok(Answer::Bool(true)));
        assert_eq!(oracle.answer(&q), Ok(Answer::Bool(true)));
        // the disk is now full: the live answer exists but must not be
        // consumed, because a resume could never replay it
        assert_eq!(oracle.answer(&q), Err(OracleError::Dropped));
        assert_eq!(oracle.answer(&q), Err(OracleError::Dropped));
        assert_eq!(journal.write_errors(), 2);
        // the in-memory log records the drops, keeping it consistent with
        // what the session consumed
        let records = journal.records();
        assert_eq!(records.len(), 4);
        assert_eq!(records[2].outcome, Err(OracleError::Dropped));
    }

    #[test]
    fn record_lines_round_trip_through_the_public_api() {
        for rec in sample_records() {
            let line = rec.to_line();
            assert!(line.ends_with('\n'));
            assert_eq!(JournalRecord::parse_line(line.trim_end()).unwrap(), rec);
        }
    }

    #[test]
    fn file_journal_survives_a_simulated_crash_and_resume() {
        let dir = std::env::temp_dir().join(format!(
            "qoco-journal-test-{}-{}",
            std::process::id(),
            qoco_telemetry::now_ns()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.journal");
        let teams = ground().schema().rel_id("Teams").unwrap();
        let f = Fact::new(teams, tup!["GER", "EU"]);
        let q = Question::VerifyFact(f);
        {
            let journal = Journal::create(&path).unwrap();
            let mut oracle = journal.wrap(ImperfectOracle::new(ground(), 0.5, 7));
            for _ in 0..5 {
                let _ = oracle.answer(&q);
            }
            // the process "crashes" here: the file is already flushed
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        // simulate a torn write of record 6
        text.push_str("6\tverify_fact\tok:b");
        std::fs::write(&path, &text).unwrap();
        let journal = Journal::resume(&path).unwrap();
        assert_eq!(journal.pending_replay(), 5);
        let mut oracle = journal.wrap(ImperfectOracle::new(ground(), 0.5, 7));
        for _ in 0..8 {
            let _ = oracle.answer(&q);
        }
        assert_eq!(journal.divergences(), 0);
        assert_eq!(journal.seq(), 8);
        // the resumed file holds the full 8-question history (the torn
        // 6th line was overwritten by nothing — appends follow it, so the
        // loadable prefix is what matters)
        let reloaded = Journal::load(&path).unwrap();
        assert_eq!(reloaded.len(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }
}
