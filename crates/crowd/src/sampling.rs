//! A sampling enumeration oracle: the crowd model behind the Chao92
//! black-box.
//!
//! The enumeration black-box of Trushkowsky et al. \[61\] assumes workers
//! answer `COMPL(Q(D))` by *sampling* from the true answer set — different
//! workers name answers they happen to know, with duplicates — and the
//! species-richness estimator infers from the duplicate structure when the
//! enumeration is complete. [`SamplingOracle`] implements exactly that
//! reply model (a weighted random true answer, ignoring what is already
//! known), while answering every other question type perfectly. Pair it
//! with [`Chao92Estimator`](crate::enumeration::Chao92Estimator) via
//! `clean_view_with_estimator` to exercise the statistical stopping rule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qoco_data::Database;
use qoco_engine::answer_set;

use crate::fault::OracleError;
use crate::oracle::Oracle;
use crate::perfect::PerfectOracle;
use crate::question::{Answer, Question};

/// A perfect oracle whose `COMPL(Q(D))` replies are random draws from the
/// true answer set (with a skewed popularity distribution), as a crowd of
/// enumerating workers would produce.
pub struct SamplingOracle {
    inner: PerfectOracle,
    rng: StdRng,
    /// Zipf-ish skew: higher values make popular answers dominate.
    skew: f64,
}

impl SamplingOracle {
    /// Build over the ground truth with a seed and a popularity skew
    /// (`0.0` = uniform; `1.0` = strongly skewed).
    pub fn new(ground: Database, seed: u64, skew: f64) -> Self {
        assert!((0.0..=1.0).contains(&skew), "skew must be in [0, 1]");
        SamplingOracle {
            inner: PerfectOracle::new(ground),
            rng: StdRng::seed_from_u64(seed),
            skew,
        }
    }
}

impl Oracle for SamplingOracle {
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError> {
        match q {
            Question::CompleteResult { query, .. } => {
                // sample from the full true answer set, ignoring `known` —
                // a worker names an answer they know, possibly a duplicate
                let answers = answer_set(query, self.inner.ground());
                if answers.is_empty() {
                    return Ok(Answer::MissingAnswer(None));
                }
                // skewed index: squashing the uniform draw toward 0 makes
                // low-index answers more popular
                let u: f64 = self.rng.random();
                let skewed = u.powf(1.0 + 3.0 * self.skew);
                let idx = ((skewed * answers.len() as f64) as usize).min(answers.len() - 1);
                Ok(Answer::MissingAnswer(Some(answers[idx].clone())))
            }
            other => self.inner.answer(other),
        }
    }

    fn label(&self) -> String {
        "sampling-oracle".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumeration::{Chao92Estimator, CompletenessEstimator};
    use qoco_data::{tup, Schema};
    use qoco_query::parse_query;

    fn ground(n: usize) -> Database {
        let s = Schema::builder().relation("T", &["a"]).build().unwrap();
        let mut g = Database::empty(s);
        for i in 0..n {
            g.insert_named("T", tup![format!("t{i:02}").as_str()])
                .unwrap();
        }
        g
    }

    #[test]
    fn sampling_replies_are_true_answers_with_duplicates() {
        let g = ground(5);
        let q = parse_query(g.schema(), "(x) :- T(x)").unwrap();
        let mut o = SamplingOracle::new(g.clone(), 3, 0.5);
        let mut seen = std::collections::HashMap::new();
        for _ in 0..100 {
            let t = o
                .answer(&Question::CompleteResult {
                    query: q.clone(),
                    known: vec![],
                })
                .unwrap()
                .expect_missing()
                .expect("non-empty answer set");
            *seen.entry(t).or_insert(0usize) += 1;
        }
        assert!(seen.len() <= 5);
        assert!(
            seen.values().any(|&c| c > 1),
            "100 draws over 5 answers must repeat"
        );
        let gm = g.clone();
        let truth = answer_set(&q, &gm);
        assert!(seen.keys().all(|t| truth.contains(t)));
    }

    #[test]
    fn chao92_declares_completeness_after_enough_sampling() {
        let g = ground(6);
        let q = parse_query(g.schema(), "(x) :- T(x)").unwrap();
        let mut o = SamplingOracle::new(g, 9, 0.0);
        let mut est = Chao92Estimator::new();
        let mut distinct = std::collections::BTreeSet::new();
        let mut rounds = 0;
        while !est.likely_complete(distinct.len()) && rounds < 500 {
            rounds += 1;
            let t = o
                .answer(&Question::CompleteResult {
                    query: q.clone(),
                    known: vec![],
                })
                .unwrap()
                .expect_missing()
                .expect("answers exist");
            est.observe(&t);
            distinct.insert(t);
        }
        assert!(rounds < 500, "estimator must converge");
        // the statistical stopping rule may fire slightly early; it must be
        // close to (and is usually exactly) full coverage
        assert!(
            distinct.len() >= 5,
            "declared complete at {} of 6",
            distinct.len()
        );
    }

    #[test]
    fn other_questions_stay_perfect() {
        let g = ground(2);
        let rel = g.schema().rel_id("T").unwrap();
        let mut o = SamplingOracle::new(g, 1, 0.2);
        assert!(o
            .answer(&Question::VerifyFact(qoco_data::Fact::new(
                rel,
                tup!["t00"]
            )))
            .unwrap()
            .expect_bool());
        assert!(!o
            .answer(&Question::VerifyFact(qoco_data::Fact::new(rel, tup!["zz"])))
            .unwrap()
            .expect_bool());
        assert_eq!(o.label(), "sampling-oracle");
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn bad_skew_panics() {
        let _ = SamplingOracle::new(ground(1), 0, 2.0);
    }

    #[test]
    fn empty_answer_set_reports_none() {
        let s = Schema::builder().relation("T", &["a"]).build().unwrap();
        let g = Database::empty(s.clone());
        let q = parse_query(&s, "(x) :- T(x)").unwrap();
        let mut o = SamplingOracle::new(g, 0, 0.0);
        assert_eq!(
            o.answer(&Question::CompleteResult {
                query: q,
                known: vec![]
            })
            .unwrap()
            .expect_missing(),
            None
        );
    }
}
