//! Transcript recording: an auditable log of every crowd interaction.
//!
//! The paper's system shows its questions to real people; a production
//! deployment needs an audit trail of what was asked and answered (e.g. to
//! compute worker rewards, Section 9's incentive model, or to debug a
//! cleaning session). [`RecordingCrowd`] wraps any [`CrowdAccess`] and
//! appends one [`TranscriptEntry`] per interaction.

use std::fmt;

use qoco_data::{Fact, Tuple};
use qoco_engine::Assignment;
use qoco_query::ConjunctiveQuery;

use crate::session::{CrowdAccess, CrowdError};
use crate::stats::CrowdStats;

/// One recorded interaction.
#[derive(Clone, Debug)]
pub enum TranscriptEntry {
    /// `TRUE(R(ā))?` and its answer.
    VerifyFact {
        /// The fact asked about.
        fact: Fact,
        /// The crowd's verdict.
        answer: bool,
    },
    /// Composite `TRUE-ALL`? and its answer.
    VerifyAllFacts {
        /// How many facts the composite covered.
        group_size: usize,
        /// The crowd's verdict.
        answer: bool,
    },
    /// `TRUE(Q, t)?` and its answer.
    VerifyAnswer {
        /// The query's name.
        query: String,
        /// The candidate answer.
        tuple: Tuple,
        /// The crowd's verdict.
        answer: bool,
    },
    /// A satisfiability check and its answer.
    VerifySatisfiable {
        /// The query's name.
        query: String,
        /// Number of bound variables in the partial assignment.
        bound_vars: usize,
        /// The crowd's verdict.
        answer: bool,
    },
    /// `COMPL(α, Q)` and whether it was completed (+ variables filled).
    Complete {
        /// The query's name.
        query: String,
        /// Variables the crowd filled (0 when unsatisfiable).
        filled: usize,
        /// Whether a completion was returned.
        completed: bool,
    },
    /// `COMPL(Q(D))` and the reported missing answer, if any.
    CompleteResult {
        /// The query's name.
        query: String,
        /// The missing answer, if one was provided.
        missing: Option<Tuple>,
    },
    /// A question the crowd failed to answer (after retries/escalation).
    Failed {
        /// The question, rendered.
        question: String,
        /// Why the crowd gave up.
        reason: String,
    },
}

impl TranscriptEntry {
    /// Short dotted label for timelines and grouping.
    pub fn label(&self) -> &'static str {
        match self {
            TranscriptEntry::VerifyFact { .. } => "crowd.verify_fact",
            TranscriptEntry::VerifyAllFacts { .. } => "crowd.verify_facts_all",
            TranscriptEntry::VerifyAnswer { .. } => "crowd.verify_answer",
            TranscriptEntry::VerifySatisfiable { .. } => "crowd.verify_satisfiable",
            TranscriptEntry::Complete { .. } => "crowd.complete",
            TranscriptEntry::CompleteResult { .. } => "crowd.complete_result",
            TranscriptEntry::Failed { .. } => "crowd.failed",
        }
    }
}

impl fmt::Display for TranscriptEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranscriptEntry::VerifyFact { fact, answer } => {
                write!(f, "TRUE({fact:?})? → {answer}")
            }
            TranscriptEntry::VerifyAllFacts { group_size, answer } => {
                write!(f, "TRUE-ALL({group_size} facts)? → {answer}")
            }
            TranscriptEntry::VerifyAnswer {
                query,
                tuple,
                answer,
            } => {
                write!(f, "TRUE({query}, {tuple})? → {answer}")
            }
            TranscriptEntry::VerifySatisfiable {
                query,
                bound_vars,
                answer,
            } => {
                write!(f, "SAT({query}, {bound_vars} bound)? → {answer}")
            }
            TranscriptEntry::Complete {
                query,
                filled,
                completed,
            } => {
                write!(
                    f,
                    "COMPL(α, {query}) → completed={completed} ({filled} vars)"
                )
            }
            TranscriptEntry::CompleteResult { query, missing } => match missing {
                Some(t) => write!(f, "COMPL({query}(D)) → {t}"),
                None => write!(f, "COMPL({query}(D)) → complete"),
            },
            TranscriptEntry::Failed { question, reason } => {
                write!(f, "{question} → UNANSWERED ({reason})")
            }
        }
    }
}

/// A [`CrowdAccess`] wrapper that records every interaction.
pub struct RecordingCrowd<C: CrowdAccess> {
    inner: C,
    transcript: Vec<TranscriptEntry>,
    /// Session-epoch timestamp (ns) per entry; 0 while telemetry is off.
    timestamps: Vec<u64>,
    /// Telemetry decision id active per entry; `None` while telemetry is
    /// off or the interaction happened outside any decision.
    decision_ids: Vec<Option<u64>>,
}

impl<C: CrowdAccess> RecordingCrowd<C> {
    /// Wrap a crowd session.
    pub fn new(inner: C) -> Self {
        RecordingCrowd {
            inner,
            transcript: Vec::new(),
            timestamps: Vec::new(),
            decision_ids: Vec::new(),
        }
    }

    /// The recorded interactions, in order.
    pub fn transcript(&self) -> &[TranscriptEntry] {
        &self.transcript
    }

    /// The decision id active when each interaction was recorded (parallel
    /// to [`RecordingCrowd::transcript`]) — ties each transcript entry back
    /// to the [`qoco_telemetry::DecisionRecord`] explaining *why* it was
    /// asked.
    pub fn decision_ids(&self) -> &[Option<u64>] {
        &self.decision_ids
    }

    fn record(&mut self, entry: TranscriptEntry) {
        self.timestamps.push(qoco_telemetry::now_ns());
        self.decision_ids
            .push(qoco_telemetry::current_decision_id());
        self.transcript.push(entry);
    }

    /// Record a failed interaction and pass the error through.
    fn record_err<T>(&mut self, question: String, err: CrowdError) -> Result<T, CrowdError> {
        self.record(TranscriptEntry::Failed {
            question,
            reason: err.last.to_string(),
        });
        Err(err)
    }

    /// Bridge the transcript into [`qoco_telemetry::TimelineEvent`]s so a
    /// [`qoco_telemetry::SessionTimeline`] can merge crowd interactions with
    /// spans and metrics. Timestamps are meaningful only for interactions
    /// recorded while telemetry was enabled (otherwise they are 0 and sort
    /// to the front).
    pub fn timeline_events(&self) -> Vec<qoco_telemetry::TimelineEvent> {
        self.transcript
            .iter()
            .zip(&self.timestamps)
            .zip(&self.decision_ids)
            .map(|((e, &at_ns), decision)| qoco_telemetry::TimelineEvent {
                at_ns,
                span: None,
                label: e.label().to_string(),
                detail: match decision {
                    Some(id) => format!("{e} [decision {id}]"),
                    None => e.to_string(),
                },
            })
            .collect()
    }

    /// Consume the wrapper, returning the inner session and the transcript.
    pub fn into_parts(self) -> (C, Vec<TranscriptEntry>) {
        (self.inner, self.transcript)
    }
}

impl<C: CrowdAccess> CrowdAccess for RecordingCrowd<C> {
    fn verify_fact(&mut self, f: &Fact) -> Result<bool, CrowdError> {
        let answer = match self.inner.verify_fact(f) {
            Ok(a) => a,
            Err(e) => return self.record_err(format!("TRUE({f:?})?"), e),
        };
        self.record(TranscriptEntry::VerifyFact {
            fact: f.clone(),
            answer,
        });
        Ok(answer)
    }

    fn verify_facts_all(&mut self, facts: &[Fact]) -> Result<bool, CrowdError> {
        let answer = match self.inner.verify_facts_all(facts) {
            Ok(a) => a,
            Err(e) => return self.record_err(format!("TRUE-ALL({} facts)?", facts.len()), e),
        };
        self.record(TranscriptEntry::VerifyAllFacts {
            group_size: facts.len(),
            answer,
        });
        Ok(answer)
    }

    fn verify_answer(&mut self, q: &ConjunctiveQuery, t: &Tuple) -> Result<bool, CrowdError> {
        let answer = match self.inner.verify_answer(q, t) {
            Ok(a) => a,
            Err(e) => return self.record_err(format!("TRUE({}, {t})?", q.name()), e),
        };
        self.record(TranscriptEntry::VerifyAnswer {
            query: q.name().to_string(),
            tuple: t.clone(),
            answer,
        });
        Ok(answer)
    }

    fn verify_satisfiable(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<bool, CrowdError> {
        let answer = match self.inner.verify_satisfiable(q, partial) {
            Ok(a) => a,
            Err(e) => {
                return self.record_err(format!("SAT({}, {} bound)?", q.name(), partial.len()), e)
            }
        };
        self.record(TranscriptEntry::VerifySatisfiable {
            query: q.name().to_string(),
            bound_vars: partial.len(),
            answer,
        });
        Ok(answer)
    }

    fn complete(
        &mut self,
        q: &ConjunctiveQuery,
        partial: &Assignment,
    ) -> Result<Option<Assignment>, CrowdError> {
        let reply = match self.inner.complete(q, partial) {
            Ok(r) => r,
            Err(e) => return self.record_err(format!("COMPL(α, {})", q.name()), e),
        };
        let filled = reply
            .as_ref()
            .map(|r| r.len().saturating_sub(partial.len()))
            .unwrap_or(0);
        self.record(TranscriptEntry::Complete {
            query: q.name().to_string(),
            filled,
            completed: reply.is_some(),
        });
        Ok(reply)
    }

    fn next_missing_answer(
        &mut self,
        q: &ConjunctiveQuery,
        known: &[Tuple],
    ) -> Result<Option<Tuple>, CrowdError> {
        let reply = match self.inner.next_missing_answer(q, known) {
            Ok(r) => r,
            Err(e) => return self.record_err(format!("COMPL({}(D))", q.name()), e),
        };
        self.record(TranscriptEntry::CompleteResult {
            query: q.name().to_string(),
            missing: reply.clone(),
        });
        Ok(reply)
    }

    fn stats(&self) -> CrowdStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyOracle;
    use crate::perfect::PerfectOracle;
    use crate::session::SingleExpert;
    use qoco_data::{tup, Database, Schema};
    use qoco_query::parse_query;

    fn ground() -> Database {
        let s = Schema::builder()
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut g = Database::empty(s);
        g.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        g.insert_named("Teams", tup!["ITA", "EU"]).unwrap();
        g
    }

    #[test]
    fn records_every_interaction_in_order() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        let q = parse_query(g.schema(), r#"(x) :- Teams(x, "EU")"#).unwrap();
        let mut crowd = RecordingCrowd::new(SingleExpert::new(PerfectOracle::new(g)));
        assert!(crowd
            .verify_fact(&Fact::new(teams, tup!["GER", "EU"]))
            .unwrap());
        assert!(crowd.verify_answer(&q, &tup!["ITA"]).unwrap());
        assert_eq!(
            crowd
                .next_missing_answer(&q, &[tup!["GER"], tup!["ITA"]])
                .unwrap(),
            None
        );
        let t = crowd.transcript();
        assert_eq!(t.len(), 3);
        assert!(matches!(
            t[0],
            TranscriptEntry::VerifyFact { answer: true, .. }
        ));
        assert!(matches!(
            t[1],
            TranscriptEntry::VerifyAnswer { answer: true, .. }
        ));
        assert!(matches!(
            t[2],
            TranscriptEntry::CompleteResult { missing: None, .. }
        ));
        // stats pass through to the inner session
        assert_eq!(crowd.stats().verify_fact_questions, 1);
        assert_eq!(crowd.stats().complete_result_tasks, 1);
    }

    #[test]
    fn transcript_renders_readably() {
        let g = ground();
        let q = parse_query(g.schema(), r#"(x) :- Teams(x, "EU")"#).unwrap();
        let mut crowd = RecordingCrowd::new(SingleExpert::new(PerfectOracle::new(g)));
        let _ = crowd.next_missing_answer(&q, &[]);
        let _ = crowd.complete(&q, &Assignment::new());
        let rendered: Vec<String> = crowd.transcript().iter().map(|e| e.to_string()).collect();
        assert!(rendered[0].starts_with("COMPL(Q(D))"), "{rendered:?}");
        assert!(rendered[1].contains("completed=true"), "{rendered:?}");
    }

    #[test]
    fn failed_interactions_are_recorded_then_propagated() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        let oracle = FaultyOracle::new(PerfectOracle::new(g), "fail@1=abstain".parse().unwrap());
        let mut crowd = RecordingCrowd::new(SingleExpert::new(oracle));
        let f = Fact::new(teams, tup!["GER", "EU"]);
        assert!(crowd.verify_fact(&f).is_err());
        assert!(crowd.verify_fact(&f).unwrap());
        let t = crowd.transcript();
        assert_eq!(t.len(), 2);
        assert!(matches!(t[0], TranscriptEntry::Failed { .. }));
        assert_eq!(t[0].label(), "crowd.failed");
        assert!(t[0].to_string().contains("UNANSWERED"), "{}", t[0]);
        assert!(matches!(
            t[1],
            TranscriptEntry::VerifyFact { answer: true, .. }
        ));
    }

    #[test]
    fn into_parts_returns_inner_and_log() {
        let g = ground();
        let teams = g.schema().rel_id("Teams").unwrap();
        let mut crowd = RecordingCrowd::new(SingleExpert::new(PerfectOracle::new(g)));
        let _ = crowd.verify_fact(&Fact::new(teams, tup!["GER", "EU"]));
        let (inner, log) = crowd.into_parts();
        assert_eq!(inner.stats().verify_fact_questions, 1);
        assert_eq!(log.len(), 1);
    }
}
