//! Suspension points: the oracle that inverts the control flow.
//!
//! Every cleaning algorithm in `qoco-core` drives a [`crate::CrowdAccess`]
//! synchronously — it *calls* the crowd and blocks on the reply. A served
//! session inverts that: the crowd is an HTTP client that answers whenever
//! it pleases (late, twice, or never), so the session must **suspend** at
//! the question boundary instead of blocking a thread.
//!
//! [`SuspendingOracle`] makes any question boundary a suspension point
//! without rewriting the (deeply recursive) cleaner loops. It holds the
//! session's consumed-answer log and serves it back in lockstep; the first
//! question *past* the log has no answer yet, so the oracle captures it as
//! a [`PendingQuestion`] and unwinds the whole cleaning call stack with a
//! typed panic payload ([`SuspendSignal`]). The driver (see
//! `qoco_core::SessionMachine`) catches the signal with
//! `std::panic::catch_unwind`, discards the partially-mutated scratch
//! state, and parks the session — which is now nothing but its spec plus
//! the answer log, durable on disk. Resuming = appending the new answer to
//! the log and re-running the (deterministic) cleaner; it replays the
//! prefix bit-identically and either suspends at the *next* question or
//! finishes with the final report.
//!
//! The re-run makes a session of *n* questions cost O(n²) oracle replays
//! in total; crowd latency dominates by many orders of magnitude, and the
//! scheme buys the two robustness properties that matter: parked sessions
//! hold no thread and no in-memory state, and a killed process rehydrates
//! every in-flight session from its journal alone.
//!
//! [`install_suspend_hook`] silences the default panic printout for
//! suspension unwinds (and only for those) so every parked question does
//! not spam stderr with a fake crash.

use std::collections::VecDeque;
use std::sync::Once;

use qoco_data::Value;

use crate::fault::OracleError;
use crate::journal::JournalRecord;
use crate::oracle::Oracle;
use crate::question::{Answer, Question, QuestionKind};

/// A question the session is parked on, in a form that can be shipped to a
/// remote crowd member and answered without access to the process that
/// asked it.
#[derive(Debug, Clone)]
pub struct PendingQuestion {
    /// 1-based question id — the sequence number the answer's journal
    /// record will carry. Doubles as the idempotency key of answer
    /// submission (together with the session epoch).
    pub seq: u64,
    /// The question-variant tag.
    pub kind: QuestionKind,
    /// Human-readable rendering (`TRUE(Q1, (ESP))?`).
    pub prompt: String,
    /// The full typed question, for in-process answering helpers
    /// (simulated oracles, tests, the `qoco-serve oracle` command).
    pub question: Question,
    /// The telemetry decision id that caused the question, when decision
    /// provenance is enabled — every API response carries it.
    pub decision: Option<u64>,
}

impl PendingQuestion {
    /// Does `answer` have the shape this question requires? (Booleans for
    /// the closed questions, a completion for `COMPL(α,Q)`, a missing
    /// tuple for `COMPL(Q(D))`.) Shape mismatches are rejected at the API
    /// boundary so [`Answer::expect_bool`] & friends can never panic
    /// inside a resumed cleaner.
    pub fn accepts(&self, answer: &Answer) -> bool {
        matches!(
            (self.kind, answer),
            (
                QuestionKind::VerifyFact
                    | QuestionKind::VerifyAllFacts
                    | QuestionKind::VerifyAnswer
                    | QuestionKind::VerifySatisfiable,
                Answer::Bool(_)
            ) | (QuestionKind::Complete, Answer::Completion(_))
                | (QuestionKind::CompleteResult, Answer::MissingAnswer(_))
        )
    }
}

/// The typed panic payload a [`SuspendingOracle`] unwinds with. Catch it
/// with `catch_unwind` + `downcast`; any other payload is a real crash and
/// must be propagated with `resume_unwind`.
pub struct SuspendSignal(pub PendingQuestion);

/// Serialize a [`Value`] with the journal's type tag (`s:GER`, `i:1990`)
/// so API payloads round-trip text/int values losslessly.
pub fn tagged_value(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Text(s) => format!("s:{s}"),
    }
}

/// Parse a [`tagged_value`] rendering back.
pub fn parse_tagged_value(s: &str) -> Result<Value, String> {
    if let Some(i) = s.strip_prefix("i:") {
        i.parse::<i64>()
            .map(Value::int)
            .map_err(|_| format!("bad int value {s:?}"))
    } else if let Some(t) = s.strip_prefix("s:") {
        Ok(Value::text(t))
    } else {
        Err(format!("value {s:?} is missing its `s:`/`i:` type tag"))
    }
}

/// The oracle behind a served session: replays the consumed-answer log in
/// lockstep, then suspends (unwinds) at the first unanswered question. See
/// the module docs for the full protocol.
pub struct SuspendingOracle {
    replay: VecDeque<JournalRecord>,
    served: u64,
    /// Replayed records whose question kind did not match the question the
    /// cleaner actually asked — always 0 unless the persisted spec and
    /// journal went out of sync (e.g. a hand-edited session directory).
    desyncs: u64,
}

impl SuspendingOracle {
    /// An oracle that will replay `log` and suspend on question
    /// `log.len() + 1`.
    pub fn new(log: Vec<JournalRecord>) -> SuspendingOracle {
        SuspendingOracle {
            replay: log.into(),
            served: 0,
            desyncs: 0,
        }
    }

    /// Questions answered from the log so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Kind mismatches between the log and the questions actually asked.
    pub fn desyncs(&self) -> u64 {
        self.desyncs
    }
}

impl Oracle for SuspendingOracle {
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError> {
        if let Some(rec) = self.replay.pop_front() {
            self.served += 1;
            if rec.kind != q.kind() {
                self.desyncs += 1;
                qoco_telemetry::counter_add("serve.replay_desyncs", 1);
            }
            return rec.outcome;
        }
        let pending = PendingQuestion {
            seq: self.served + 1,
            kind: q.kind(),
            prompt: format!("{q:?}"),
            question: q.clone(),
            decision: qoco_telemetry::current_decision_id(),
        };
        std::panic::panic_any(SuspendSignal(pending));
    }

    fn label(&self) -> String {
        "suspending".to_string()
    }
}

/// Install (once, process-wide) a panic hook that stays silent for
/// [`SuspendSignal`] unwinds and delegates everything else to the
/// previously-installed hook. Idempotent; called automatically by the
/// session machine before its first step.
pub fn install_suspend_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SuspendSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Fact, RelId};

    fn verify_q() -> Question {
        Question::VerifyFact(Fact::new(RelId::from_index(0), tup!["GER", "EU"]))
    }

    fn bool_record(seq: u64, b: bool) -> JournalRecord {
        JournalRecord {
            seq,
            kind: QuestionKind::VerifyFact,
            outcome: Ok(Answer::Bool(b)),
            decision: None,
            request: None,
        }
    }

    #[test]
    fn replays_the_log_then_suspends_with_the_next_seq() {
        install_suspend_hook();
        let mut oracle = SuspendingOracle::new(vec![bool_record(1, true), bool_record(2, false)]);
        assert_eq!(oracle.answer(&verify_q()), Ok(Answer::Bool(true)));
        assert_eq!(oracle.answer(&verify_q()), Ok(Answer::Bool(false)));
        assert_eq!(oracle.served(), 2);
        let unwound =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| oracle.answer(&verify_q())));
        let payload = unwound.expect_err("the dry oracle must suspend");
        let signal = payload
            .downcast::<SuspendSignal>()
            .expect("payload is a SuspendSignal");
        assert_eq!(signal.0.seq, 3);
        assert_eq!(signal.0.kind, QuestionKind::VerifyFact);
        assert!(signal.0.prompt.starts_with("TRUE("), "{}", signal.0.prompt);
    }

    #[test]
    fn faulted_outcomes_replay_as_faults() {
        let mut oracle = SuspendingOracle::new(vec![JournalRecord {
            seq: 1,
            kind: QuestionKind::VerifyFact,
            outcome: Err(OracleError::Abstain),
            decision: None,
            request: None,
        }]);
        assert_eq!(oracle.answer(&verify_q()), Err(OracleError::Abstain));
    }

    #[test]
    fn kind_mismatches_are_counted_not_fatal() {
        let mut oracle = SuspendingOracle::new(vec![JournalRecord {
            seq: 1,
            kind: QuestionKind::VerifyAnswer,
            outcome: Ok(Answer::Bool(true)),
            decision: None,
            request: None,
        }]);
        assert_eq!(oracle.answer(&verify_q()), Ok(Answer::Bool(true)));
        assert_eq!(oracle.desyncs(), 1);
    }

    #[test]
    fn shape_acceptance_follows_the_kind() {
        let p = PendingQuestion {
            seq: 1,
            kind: QuestionKind::Complete,
            prompt: String::new(),
            question: verify_q(),
            decision: None,
        };
        assert!(p.accepts(&Answer::Completion(None)));
        assert!(!p.accepts(&Answer::Bool(true)));
        assert!(!p.accepts(&Answer::MissingAnswer(None)));
    }

    #[test]
    fn tagged_values_round_trip() {
        for v in [Value::text("GER"), Value::text("i:x"), Value::int(-7)] {
            assert_eq!(parse_tagged_value(&tagged_value(&v)).unwrap(), v);
        }
        assert!(parse_tagged_value("GER").is_err());
        assert!(parse_tagged_value("i:notanint").is_err());
    }
}
