//! The enumeration black-box (paper Section 6.1, citing Trushkowsky et
//! al. \[61\]).
//!
//! `CrowdComplete(Q(D))` "needs to know when to stop posting these questions
//! (i.e., when Q(D) is complete)". The paper uses the statistical tools of
//! \[61\] as a black box. We provide two implementations:
//!
//! * [`GroundTruthEstimator`] — knows `|Q(D_G)|` and stops exactly when
//!   every true answer is present (the simulated-oracle experiments do
//!   this implicitly: a perfect oracle answers `None` when nothing is
//!   missing);
//! * [`Chao92Estimator`] — the species-richness estimator of \[61\]: from the
//!   stream of crowd-provided answers, estimate the total number of
//!   distinct answers and declare completeness when the estimate is
//!   reached.

use std::collections::HashMap;

use qoco_data::Tuple;

/// Decides when a crowd-enumerated result is likely complete.
pub trait CompletenessEstimator {
    /// Record one crowd-provided answer (duplicates allowed — duplicate
    /// frequency is the signal the statistical estimator uses).
    fn observe(&mut self, answer: &Tuple);
    /// Is the result likely complete given `distinct_known` answers
    /// currently in the (repaired) view?
    fn likely_complete(&self, distinct_known: usize) -> bool;
    /// The estimated total number of distinct true answers, if available.
    fn estimated_total(&self) -> Option<f64>;
}

/// Oracle-grade completeness: knows the true distinct-answer count.
#[derive(Debug, Clone)]
pub struct GroundTruthEstimator {
    true_count: usize,
}

impl GroundTruthEstimator {
    /// Build with the true number of distinct answers `|Q(D_G)|`.
    pub fn new(true_count: usize) -> Self {
        GroundTruthEstimator { true_count }
    }
}

impl CompletenessEstimator for GroundTruthEstimator {
    fn observe(&mut self, _answer: &Tuple) {}

    fn likely_complete(&self, distinct_known: usize) -> bool {
        distinct_known >= self.true_count
    }

    fn estimated_total(&self) -> Option<f64> {
        Some(self.true_count as f64)
    }
}

/// The Chao92 species-richness estimator used by crowd-enumeration systems.
///
/// With `n` observations of `c` distinct answers of which `f₁` were seen
/// exactly once, sample coverage is `Ĉ = 1 − f₁/n` and the richness
/// estimate is `N̂ = c / Ĉ` (with a coefficient-of-variation correction
/// term for skewed answer popularity). Completeness is declared when the
/// distinct answers reach the estimate.
#[derive(Debug, Clone, Default)]
pub struct Chao92Estimator {
    counts: HashMap<Tuple, usize>,
    observations: usize,
}

impl Chao92Estimator {
    /// Fresh estimator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Number of distinct answers observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    fn f1(&self) -> usize {
        self.counts.values().filter(|&&c| c == 1).count()
    }

    /// The Chao92 estimate `N̂`, or `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.observations == 0 {
            return None;
        }
        let n = self.observations as f64;
        let c = self.counts.len() as f64;
        let f1 = self.f1() as f64;
        // sample coverage; when every observation is a singleton the raw
        // value hits zero, so fall back to a small positive floor that
        // keeps the richness estimate finite (and large)
        let raw = 1.0 - f1 / n;
        let coverage = if raw > 0.0 { raw } else { 1.0 / (n + 1.0) };
        // coefficient of variation γ² of the answer frequencies
        let mean = n / c;
        let var: f64 = self
            .counts
            .values()
            .map(|&k| {
                let d = k as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / c;
        let cv2 = (var / (mean * mean)).max(0.0);
        let n_hat = c / coverage + (n * (1.0 - coverage) / coverage) * cv2;
        Some(n_hat)
    }
}

impl CompletenessEstimator for Chao92Estimator {
    fn observe(&mut self, answer: &Tuple) {
        *self.counts.entry(answer.clone()).or_insert(0) += 1;
        self.observations += 1;
    }

    fn likely_complete(&self, distinct_known: usize) -> bool {
        // a handful of observations cannot support a completeness claim:
        // require a few multiples of the distinct count before trusting
        // the coverage statistics
        if self.observations < 2 * self.counts.len().max(1) + 4 {
            return false;
        }
        match self.estimate() {
            // round to the nearest whole answer: the estimator converges to
            // the true count from above as coverage → 1
            Some(n_hat) => (distinct_known as f64) + 0.5 >= n_hat,
            None => false,
        }
    }

    fn estimated_total(&self) -> Option<f64> {
        self.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::tup;

    #[test]
    fn ground_truth_estimator_is_exact() {
        let e = GroundTruthEstimator::new(3);
        assert!(!e.likely_complete(2));
        assert!(e.likely_complete(3));
        assert!(e.likely_complete(4));
        assert_eq!(e.estimated_total(), Some(3.0));
    }

    #[test]
    fn chao92_with_no_observations_is_inconclusive() {
        let e = Chao92Estimator::new();
        assert!(!e.likely_complete(0));
        assert_eq!(e.estimate(), None);
    }

    #[test]
    fn chao92_converges_when_every_answer_repeats() {
        let mut e = Chao92Estimator::new();
        for _ in 0..5 {
            for t in ["a", "b", "c"] {
                e.observe(&tup![t]);
            }
        }
        // no singletons → coverage 1 → estimate = distinct = 3
        let est = e.estimate().unwrap();
        assert!((est - 3.0).abs() < 1e-9, "estimate {est}");
        assert!(e.likely_complete(3));
        assert_eq!(e.distinct(), 3);
        assert_eq!(e.observations(), 15);
    }

    #[test]
    fn chao92_all_singletons_predicts_more() {
        let mut e = Chao92Estimator::new();
        for i in 0..10i64 {
            e.observe(&tup![i]);
        }
        // everything seen once → coverage near zero → big estimate
        let est = e.estimate().unwrap();
        assert!(est > 10.0, "estimate {est}");
        assert!(!e.likely_complete(10));
    }

    #[test]
    fn chao92_mixed_frequencies_are_sane() {
        let mut e = Chao92Estimator::new();
        // "a" popular, "b" seen twice, "c" a singleton
        for _ in 0..8 {
            e.observe(&tup!["a"]);
        }
        e.observe(&tup!["b"]);
        e.observe(&tup!["b"]);
        e.observe(&tup!["c"]);
        let est = e.estimate().unwrap();
        assert!(est >= 3.0, "estimate {est} must be ≥ distinct count");
        assert!(est < 20.0, "estimate {est} should stay plausible");
    }
}
