//! Crowd questions and answers.

use std::fmt;

use qoco_data::{Fact, Tuple};
use qoco_engine::Assignment;
use qoco_query::ConjunctiveQuery;

/// A question posed to a crowd member.
#[derive(Clone)]
pub enum Question {
    /// `TRUE(R(ā))?` — is this fact in the ground truth? (Section 3.2)
    VerifyFact(Fact),
    /// A *composite* question (Section 9's future-work extension): are ALL
    /// of these facts true? One crowd interaction verifies a whole set.
    VerifyAllFacts(Vec<Fact>),
    /// `TRUE(Q, t)?` — is `t ∈ Q(D_G)`? (Section 6.1)
    VerifyAnswer {
        /// The query.
        query: ConjunctiveQuery,
        /// The candidate answer.
        answer: Tuple,
    },
    /// Is the partial assignment satisfiable w.r.t. `Q` and `D_G` — i.e.
    /// can `α(body(Q))` be completed into a witness? This is `CrowdVerify`
    /// applied to a (partially-)ground body in Algorithm 2.
    VerifySatisfiable {
        /// The query (typically `Q|t` or one of its subqueries).
        query: ConjunctiveQuery,
        /// The partial assignment to test.
        partial: Assignment,
    },
    /// `COMPL(α, Q)` — complete `α(body(Q))` into a witness through a total
    /// valid assignment extending `α`, if one exists (Section 5).
    Complete {
        /// The query to complete against.
        query: ConjunctiveQuery,
        /// The partial assignment to extend.
        partial: Assignment,
    },
    /// `COMPL(Q(D))` — provide an answer of `Q(D_G)` that is missing from
    /// the known result, or report completeness (Section 6.1).
    CompleteResult {
        /// The query.
        query: ConjunctiveQuery,
        /// The answers already known (i.e. `Q(D)` plus already-reported
        /// missing answers).
        known: Vec<Tuple>,
    },
}

/// The flat tag of a [`Question`] variant — the unit of per-question-type
/// configuration in fault plans, journal records and telemetry labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QuestionKind {
    /// `TRUE(R(ā))?`
    VerifyFact,
    /// Composite `TRUE-ALL`?
    VerifyAllFacts,
    /// `TRUE(Q, t)?`
    VerifyAnswer,
    /// Satisfiability check on a partial assignment.
    VerifySatisfiable,
    /// `COMPL(α, Q)`
    Complete,
    /// `COMPL(Q(D))`
    CompleteResult,
}

impl QuestionKind {
    /// The snake_case name used in telemetry labels, fault-plan specs and
    /// journal records.
    pub fn as_str(&self) -> &'static str {
        match self {
            QuestionKind::VerifyFact => "verify_fact",
            QuestionKind::VerifyAllFacts => "verify_facts_all",
            QuestionKind::VerifyAnswer => "verify_answer",
            QuestionKind::VerifySatisfiable => "verify_satisfiable",
            QuestionKind::Complete => "complete",
            QuestionKind::CompleteResult => "complete_result",
        }
    }

    /// Parse the [`as_str`](Self::as_str) name back.
    pub fn parse(s: &str) -> Option<QuestionKind> {
        Some(match s {
            "verify_fact" => QuestionKind::VerifyFact,
            "verify_facts_all" => QuestionKind::VerifyAllFacts,
            "verify_answer" => QuestionKind::VerifyAnswer,
            "verify_satisfiable" => QuestionKind::VerifySatisfiable,
            "complete" => QuestionKind::Complete,
            "complete_result" => QuestionKind::CompleteResult,
            _ => return None,
        })
    }
}

impl fmt::Display for QuestionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Question {
    /// This question's [`QuestionKind`] tag.
    pub fn kind(&self) -> QuestionKind {
        match self {
            Question::VerifyFact(_) => QuestionKind::VerifyFact,
            Question::VerifyAllFacts(_) => QuestionKind::VerifyAllFacts,
            Question::VerifyAnswer { .. } => QuestionKind::VerifyAnswer,
            Question::VerifySatisfiable { .. } => QuestionKind::VerifySatisfiable,
            Question::Complete { .. } => QuestionKind::Complete,
            Question::CompleteResult { .. } => QuestionKind::CompleteResult,
        }
    }
}

impl fmt::Debug for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Question::VerifyFact(fact) => write!(f, "TRUE({fact:?})?"),
            Question::VerifyAllFacts(facts) => write!(f, "TRUE-ALL({} facts)?", facts.len()),
            Question::VerifyAnswer { query, answer } => {
                write!(f, "TRUE({}, {answer})?", query.name())
            }
            Question::VerifySatisfiable { query, partial } => {
                write!(f, "SAT({partial:?}, {})?", query.name())
            }
            Question::Complete { query, partial } => {
                write!(f, "COMPL({partial:?}, {})", query.name())
            }
            Question::CompleteResult { query, known } => {
                write!(
                    f,
                    "COMPL({}(D)) given {} known answers",
                    query.name(),
                    known.len()
                )
            }
        }
    }
}

/// An answer from a crowd member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// YES/NO to a boolean question.
    Bool(bool),
    /// For [`Question::Complete`]: the extended total valid assignment, or
    /// `None` when the partial assignment is unsatisfiable.
    Completion(Option<Assignment>),
    /// For [`Question::CompleteResult`]: a missing answer, or `None` when
    /// the result is believed complete.
    MissingAnswer(Option<Tuple>),
}

impl Answer {
    /// The boolean payload; panics on a non-boolean answer (a protocol
    /// violation by the oracle implementation).
    pub fn expect_bool(&self) -> bool {
        match self {
            Answer::Bool(b) => *b,
            other => panic!("expected a boolean answer, got {other:?}"),
        }
    }

    /// The completion payload; panics on other variants.
    pub fn expect_completion(&self) -> Option<Assignment> {
        match self {
            Answer::Completion(c) => c.clone(),
            other => panic!("expected a completion answer, got {other:?}"),
        }
    }

    /// The missing-answer payload; panics on other variants.
    pub fn expect_missing(&self) -> Option<Tuple> {
        match self {
            Answer::MissingAnswer(t) => t.clone(),
            other => panic!("expected a missing-answer reply, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, RelId, Schema};
    use qoco_query::parse_query;

    #[test]
    fn debug_formats_name_the_question_type() {
        let s = Schema::builder().relation("T", &["a"]).build().unwrap();
        let q = parse_query(&s, "(x) :- T(x)").unwrap();
        let vf = Question::VerifyFact(Fact::new(RelId::from_index(0), tup!["a"]));
        assert!(format!("{vf:?}").starts_with("TRUE("));
        let va = Question::VerifyAnswer {
            query: q.clone(),
            answer: tup!["a"],
        };
        assert!(format!("{va:?}").contains("TRUE(Q"));
        let cr = Question::CompleteResult {
            query: q,
            known: vec![],
        };
        assert!(format!("{cr:?}").contains("COMPL"));
    }

    #[test]
    fn expect_accessors() {
        assert!(Answer::Bool(true).expect_bool());
        assert_eq!(
            Answer::MissingAnswer(Some(tup!["x"])).expect_missing(),
            Some(tup!["x"])
        );
        assert_eq!(Answer::Completion(None).expect_completion(), None);
    }

    #[test]
    #[should_panic(expected = "expected a boolean")]
    fn expect_bool_panics_on_completion() {
        Answer::Completion(None).expect_bool();
    }
}
