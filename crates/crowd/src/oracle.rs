//! The oracle trait.

use crate::fault::OracleError;
use crate::question::{Answer, Question};

/// A crowd member that can be asked QOCO's question types.
///
/// A *perfect* oracle "always speaks the truth and knows about `D_G`"
/// (Section 3.2); imperfect experts may err, and a real crowd also fails to
/// answer at all — hence the `Result`: `Err` means *no answer was produced*
/// ([`OracleError`] says why), while a wrong-but-delivered answer is still
/// `Ok`. Implementations must answer every question variant with the
/// matching [`Answer`] variant.
pub trait Oracle {
    /// Answer one question, or report why no answer could be produced.
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError>;

    /// A short label for reports ("oracle", "expert-2", …).
    fn label(&self) -> String {
        "oracle".to_string()
    }
}

impl<T: Oracle + ?Sized> Oracle for Box<T> {
    fn answer(&mut self, q: &Question) -> Result<Answer, OracleError> {
        (**self).answer(q)
    }
    fn label(&self) -> String {
        (**self).label()
    }
}
