//! The oracle trait.

use crate::question::{Answer, Question};

/// A crowd member that can be asked QOCO's question types.
///
/// A *perfect* oracle "always speaks the truth and knows about `D_G`"
/// (Section 3.2); imperfect experts may err. Implementations must answer
/// every question variant with the matching [`Answer`] variant.
pub trait Oracle {
    /// Answer one question.
    fn answer(&mut self, q: &Question) -> Answer;

    /// A short label for reports ("oracle", "expert-2", …).
    fn label(&self) -> String {
        "oracle".to_string()
    }
}

impl<T: Oracle + ?Sized> Oracle for Box<T> {
    fn answer(&mut self, q: &Question) -> Answer {
        (**self).answer(q)
    }
    fn label(&self) -> String {
        (**self).label()
    }
}
