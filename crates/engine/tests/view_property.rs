//! Property test for [`qoco_engine::MaterializedView`]: under random
//! databases and random edit sequences — inserts, deletes, no-op edits,
//! mid-sequence view rebuilds (a killed session resuming from the
//! database) and out-of-band mutations — the view's cached answers stay
//! byte-identical to a fresh `answer_set()` after every single edit, for
//! every thread count. This is the correctness contract that lets the
//! cleaning loop trust the incremental path at any scale.

use qoco_data::{Database, Edit, Fact, Schema, Tuple, Value};
use qoco_engine::{answer_set, EvalOptions, MaterializedView};
use qoco_query::{parse_query, ConjunctiveQuery};
use std::sync::Arc;

/// xorshift64* — deterministic, dependency-free randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("R", &["a", "b"])
        .relation("S", &["b", "c"])
        .relation("T", &["a", "tag"])
        .build()
        .unwrap()
}

/// Query shapes covering joins, constants, repeated relations and
/// inequalities — the cases with distinct delta-maintenance code paths.
fn queries(schema: &Arc<Schema>) -> Vec<ConjunctiveQuery> {
    vec![
        parse_query(schema, "Q1(x, z) :- R(x, y), S(y, z)").unwrap(),
        parse_query(schema, r#"Q2(x) :- R(x, y), T(x, "hot")"#).unwrap(),
        parse_query(schema, "Q3(x) :- R(x, y), R(y, x)").unwrap(),
        parse_query(schema, "Q4(x, z) :- R(x, y), S(y, z), x != z").unwrap(),
    ]
}

fn random_fact(schema: &Arc<Schema>, rng: &mut Rng) -> Fact {
    // a small value pool so joins, repeats and deletions of present facts
    // actually happen
    let vals = ["a", "b", "c", "d"];
    let pick = |rng: &mut Rng| Value::text(vals[rng.below(4) as usize]);
    match rng.below(3) {
        0 => Fact::new(
            schema.rel_id("R").unwrap(),
            Tuple::new(vec![pick(rng), pick(rng)]),
        ),
        1 => Fact::new(
            schema.rel_id("S").unwrap(),
            Tuple::new(vec![pick(rng), pick(rng)]),
        ),
        _ => {
            let tag = if rng.below(2) == 0 { "hot" } else { "cold" };
            Fact::new(
                schema.rel_id("T").unwrap(),
                Tuple::new(vec![pick(rng), Value::text(tag)]),
            )
        }
    }
}

fn random_db(schema: &Arc<Schema>, rng: &mut Rng) -> Database {
    let mut db = Database::empty(schema.clone());
    for _ in 0..rng.below(24) {
        db.insert(random_fact(schema, rng)).unwrap();
    }
    db
}

/// Drive one (query, seed, threads) cell: 120 random edits, checking the
/// view against a fresh evaluation after every one. Midway, the view is
/// dropped and rebuilt from the database alone (killed-session resume);
/// later the database is mutated behind the view's back and `sync` must
/// recover via the epoch fallback.
fn drive(q: &ConjunctiveQuery, seed: u64, threads: usize) {
    let schema = schema();
    let mut rng = Rng(seed | 1);
    let mut db = random_db(&schema, &mut rng);
    let opts = EvalOptions {
        threads: Some(threads),
        ..EvalOptions::default()
    };
    let mut view = MaterializedView::with_options(q.clone(), &db, opts);
    for step in 0..120 {
        if step == 60 {
            // killed-session resume: the in-memory view is gone; a new one
            // must materialize from the database state alone
            view = MaterializedView::with_options(q.clone(), &db, opts);
        }
        if step == 90 {
            // out-of-band mutation: the view only learns via sync()
            db.insert(random_fact(&schema, &mut rng)).unwrap();
            view.sync(&db);
        }
        let fact = random_fact(&schema, &mut rng);
        let edit = if rng.below(2) == 0 {
            Edit::insert(fact)
        } else {
            Edit::delete(fact)
        };
        db.apply(&edit).unwrap();
        view.apply_edit(&db, &edit);
        let expected = answer_set(q, &db);
        assert_eq!(
            view.answers(),
            expected,
            "query {} diverged at step {step} (seed {seed}, threads {threads}) after {edit:?}",
            q.name()
        );
    }
}

#[test]
fn view_matches_full_reevaluation_sequential() {
    let schema = schema();
    for q in &queries(&schema) {
        for seed in [0x5EED_0001u64, 0xC0FFEE, 0xBADD_CAFE] {
            drive(q, seed, 1);
        }
    }
}

#[test]
fn view_matches_full_reevaluation_across_thread_counts() {
    let schema = schema();
    for q in &queries(&schema) {
        for threads in [2usize, 8] {
            drive(q, 0xD1CE_D1CE, threads);
        }
    }
}
