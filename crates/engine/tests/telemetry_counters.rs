//! Telemetry correctness under the parallel eval path.
//!
//! These live in their own integration-test binary: a telemetry session is
//! process-global, and unit tests running concurrently in another binary
//! would bleed counter increments into an active session.

use std::sync::Arc;

use qoco_data::{tup, Database, Schema};
use qoco_engine::{all_assignments, Assignment, EvalOptions};
use qoco_query::{parse_query, ConjunctiveQuery};
use qoco_telemetry::InMemoryCollector;

/// A join whose top-level candidate list clears the engine's parallel
/// threshold, so `threads > 1` actually fans out.
fn wide_workload() -> (Database, ConjunctiveQuery) {
    let s = Schema::builder()
        .relation("A", &["a", "g"])
        .relation("B", &["b", "g"])
        .build()
        .unwrap();
    let mut db = Database::empty(s.clone());
    for i in 0..60i64 {
        db.insert_named("A", tup![i, i % 3]).unwrap();
        db.insert_named("B", tup![i, i % 3]).unwrap();
    }
    let q = parse_query(&s, "(x, y) :- A(x, g), B(y, g)").unwrap();
    (db, q)
}

fn opts(threads: usize) -> EvalOptions {
    EvalOptions {
        threads: Some(threads),
        ..EvalOptions::default()
    }
}

/// Run the workload under a fresh session, returning (assignments_tried,
/// answer count, recorded spans).
fn run_session(threads: usize) -> (u64, usize, Vec<qoco_telemetry::SpanRecord>) {
    let (db, q) = wide_workload();
    let collector = Arc::new(InMemoryCollector::new());
    let session = qoco_telemetry::session(collector.clone());
    let result = all_assignments(&q, &db, &Assignment::new(), opts(threads));
    let tried = qoco_telemetry::metrics()
        .snapshot()
        .counter("eval.assignments_tried");
    drop(session);
    (tried, result.assignments.len(), collector.spans())
}

#[test]
fn no_counter_increments_lost_with_eight_parallel_workers() {
    let (tried_seq, n_seq, _) = run_session(1);
    let (tried_par, n_par, _) = run_session(8);
    assert_eq!(n_seq, n_par, "parallel eval changed the answer set");
    assert!(tried_seq > 0, "workload exercised the counter");
    // Every worker's `tried` tally is merged and added exactly once; a racy
    // accumulation would drop increments at threads=8.
    assert_eq!(
        tried_par, tried_seq,
        "assignments_tried diverged between threads=1 and threads=8"
    );
}

#[test]
fn parallel_chunks_land_on_distinct_tracks_under_the_eval_span() {
    let (_, _, spans) = run_session(4);
    let eval = spans
        .iter()
        .find(|s| s.name == "eval.assignments")
        .expect("eval.assignments span recorded");
    let chunks: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "eval.par_chunk")
        .collect();
    assert!(
        chunks.len() >= 2,
        "expected a fan-out, got {} chunk spans",
        chunks.len()
    );
    let mut threads: Vec<u64> = chunks.iter().map(|c| c.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert!(
        threads.len() >= 2,
        "chunk spans all landed on one thread track: {threads:?}"
    );
    for c in &chunks {
        assert_eq!(c.parent, Some(eval.id), "chunk linked to the eval span");
        assert!(c.field("candidates").is_some());
        assert!(c.field("valid").is_some());
        let probes: u64 = c.field("probes").and_then(|v| v.parse().ok()).unwrap();
        assert!(probes > 0, "each chunk issues index probes on the join");
    }
    // the eval span carries the session-wide probe tally for attribution
    let eval_probes: u64 = eval.field("probes").and_then(|v| v.parse().ok()).unwrap();
    let chunk_probes: u64 = chunks
        .iter()
        .map(|c| {
            c.field("probes")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap()
        })
        .sum();
    assert!(eval_probes >= chunk_probes, "parent tally includes chunks");
}
