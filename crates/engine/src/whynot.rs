//! Why-not analysis: the *picky operator* behind a missing answer.
//!
//! Stands in for the WhyNot? system of Tran & Chan \[60\] that the paper's
//! Provenance split strategy calls (Section 5.2). Given an answer-embedded
//! query `Q|t` with `Q|t(D) = ∅`, the Provenance split needs a bipartition
//! of the body atoms such that each side has valid assignments in `D` but
//! their join excludes the missing answer — i.e. the join operator between
//! the two sides is the *frontier picky operator*.
//!
//! We compute it by growing a jointly-satisfiable atom set in a
//! connectivity-aware, selectivity-first order; the first atom whose
//! addition makes the set unsatisfiable marks the frontier, and the split is
//! `{grown set}` vs `{the rest}` — exactly the bipartition the WhyNot?-based
//! split in the paper's Figure 2 produces.

use std::collections::BTreeSet;

use qoco_data::Database;
use qoco_query::{ConjunctiveQuery, Term, Var};

use crate::assignment::Assignment;
use crate::eval::is_satisfiable;

/// Build the subquery of `q` on the atom subset `keep` (all-variables head,
/// inequalities kept when covered) and test its satisfiability in `db`.
fn subset_satisfiable(q: &ConjunctiveQuery, db: &Database, keep: &[usize]) -> bool {
    match qoco_query::split_subset(q, keep) {
        Ok(sub) => is_satisfiable(&sub, db, &Assignment::new()),
        Err(_) => false,
    }
}

/// The order in which atoms are considered: most-constant (most selective)
/// first, then preferring atoms connected to already-chosen ones, then by
/// index for determinism.
fn frontier_order(q: &ConjunctiveQuery) -> Vec<usize> {
    let n = q.atoms().len();
    let atom_vars: Vec<BTreeSet<Var>> = q
        .atoms()
        .iter()
        .map(|a| a.vars().into_iter().collect())
        .collect();
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    let mut chosen_vars: BTreeSet<Var> = BTreeSet::new();
    let mut remaining: Vec<usize> = (0..n).collect();
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .copied()
            .max_by_key(|&i| {
                let consts = q.atoms()[i]
                    .terms
                    .iter()
                    .filter(|t| matches!(t, Term::Const(_)))
                    .count();
                let connected = atom_vars[i].intersection(&chosen_vars).count();
                // prefer connected-to-chosen, then more constants, then
                // lower index (max_by_key keeps the *last* max, so negate i)
                (connected, consts, usize::MAX - i)
            })
            .expect("remaining is non-empty");
        chosen.push(best);
        chosen_vars.extend(atom_vars[best].iter().cloned());
        remaining.retain(|&i| i != best);
    }
    chosen
}

/// Find the frontier bipartition for a query with no valid assignment:
/// returns a mask (`true` = first side) where the first side is the maximal
/// satisfiable prefix in frontier order and the second side is the rest.
///
/// Returns `None` when the whole query is satisfiable (nothing is missing)
/// or when the query has fewer than two atoms (no join to blame).
pub fn frontier_split(q: &ConjunctiveQuery, db: &Database) -> Option<Vec<bool>> {
    let n = q.atoms().len();
    if n < 2 {
        return None;
    }
    let _span = qoco_telemetry::span("engine.why_not").field("atoms", n);
    if is_satisfiable(q, db, &Assignment::new()) {
        return None;
    }
    let order = frontier_order(q);
    let mut kept: Vec<usize> = Vec::new();
    for &i in &order {
        let mut trial = kept.clone();
        trial.push(i);
        if subset_satisfiable(q, db, &trial) {
            kept = trial;
        } else if kept.is_empty() {
            // the very first atom is unsatisfiable alone (e.g. a constant
            // that matches nothing): isolate it
            let mut mask = vec![true; n];
            mask[i] = false;
            return Some(mask);
        } else {
            // frontier found: kept side vs everything else
            let mut mask = vec![false; n];
            for &k in &kept {
                mask[k] = true;
            }
            return Some(mask);
        }
    }
    // Every prefix was satisfiable yet the full query is not — possible only
    // through inequalities that straddle subqueries and are dropped during
    // projection. Split off the last atom in frontier order.
    let last = *order.last().expect("n ≥ 2");
    let mut mask = vec![true; n];
    mask[last] = false;
    Some(mask)
}

/// A why-not explanation: which atoms (by index) are jointly satisfiable
/// and which single join step excludes the missing answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyNot {
    /// Atom indexes of the satisfiable side.
    pub satisfiable: Vec<usize>,
    /// Atom indexes of the excluded side.
    pub excluded: Vec<usize>,
}

/// Produce a why-not explanation for an unsatisfiable query (see
/// [`frontier_split`]).
pub fn why_not(q: &ConjunctiveQuery, db: &Database) -> Option<WhyNot> {
    let mask = frontier_split(q, db)?;
    let satisfiable = (0..mask.len()).filter(|&i| mask[i]).collect();
    let excluded = (0..mask.len()).filter(|&i| !mask[i]).collect();
    Some(WhyNot {
        satisfiable,
        excluded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Schema, Value};
    use qoco_query::{embed_answer, parse_query};
    use std::sync::Arc;

    /// The Example 5.4 setup: Teams(ITA, EU) is missing, so (Pirlo) is a
    /// missing answer of Q2.
    fn setup() -> (Arc<Schema>, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_named("Games", tup!["09.06.06", "ITA", "FRA", "Final", "5:3"])
            .unwrap();
        for (c, k) in [("GER", "EU"), ("ESP", "EU"), ("BRA", "EU")] {
            db.insert_named("Teams", tup![c, k]).unwrap();
        }
        db.insert_named("Players", tup!["Pirlo", "ITA", 1979, "ITA"])
            .unwrap();
        db.insert_named("Goals", tup!["Pirlo", "09.06.06"]).unwrap();
        let q = parse_query(
            &schema,
            r#"Q2(x) :- Players(x, y, z, w), Goals(x, d), Games(d, y, v, "Final", u), Teams(y, "EU")."#,
        )
        .unwrap();
        (schema, db, q)
    }

    #[test]
    fn pirlo_split_isolates_teams() {
        let (_, db, q) = setup();
        let q_t = embed_answer(&q, &[Value::text("Pirlo")]).unwrap();
        let mask = frontier_split(&q_t, &db).unwrap();
        // Atoms: 0 Players, 1 Goals, 2 Games, 3 Teams. The first three are
        // jointly satisfiable; Teams(y := ITA, EU) is not.
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn satisfiable_query_has_no_split() {
        let (_, mut db, q) = setup();
        // x := Pirlo is missing, but some OTHER European player might not
        // be; here nobody qualifies (ITA not EU), so the un-embedded query
        // is unsatisfiable too. Make it satisfiable by adding data:
        db.insert_named("Teams", tup!["ITA", "EU"]).unwrap();
        let q_t = embed_answer(&q, &[Value::text("Pirlo")]).unwrap();
        assert!(frontier_split(&q_t, &db).is_none());
        assert!(why_not(&q_t, &db).is_none());
    }

    #[test]
    fn single_atom_query_has_no_split() {
        let (schema, db, _) = setup();
        let q = parse_query(&schema, r#"(x) :- Teams(x, "AF")"#).unwrap();
        assert!(frontier_split(&q, &db).is_none());
    }

    #[test]
    fn dead_constant_atom_is_isolated() {
        let (schema, db, _) = setup();
        // Games with stage "Quarter" matches nothing; Teams side matches.
        let q = parse_query(
            &schema,
            r#"(x) :- Teams(x, "EU"), Games(d, x, y, "Quarter", u)"#,
        )
        .unwrap();
        let mask = frontier_split(&q, &db).unwrap();
        // The satisfiable side must contain Teams (atom 0), the excluded
        // side the Games atom (atom 1).
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn why_not_reports_both_sides() {
        let (_, db, q) = setup();
        let q_t = embed_answer(&q, &[Value::text("Pirlo")]).unwrap();
        let wn = why_not(&q_t, &db).unwrap();
        assert_eq!(wn.satisfiable, vec![0, 1, 2]);
        assert_eq!(wn.excluded, vec![3]);
    }

    #[test]
    fn both_sides_satisfiable_like_figure_2() {
        // Figure 2: O1 = {R1, R2} and O2 = {R3, R4} each have valid
        // assignments but their join is empty.
        let schema = Schema::builder()
            .relation("R1", &["x", "y"])
            .relation("R2", &["y", "z"])
            .relation("R3", &["z", "w"])
            .relation("R4", &["z", "v"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_named("R1", tup!["a", "b"]).unwrap();
        db.insert_named("R2", tup!["b", "c1"]).unwrap();
        db.insert_named("R3", tup!["c2", "d"]).unwrap();
        db.insert_named("R4", tup!["c2", "e"]).unwrap();
        let q = parse_query(
            &schema,
            "(x, y, z, w) :- R1(x, y), R2(y, z), R3(z, w), R4(z, v)",
        )
        .unwrap();
        let mask = frontier_split(&q, &db).unwrap();
        let sat: Vec<usize> = (0..4).filter(|&i| mask[i]).collect();
        let exc: Vec<usize> = (0..4).filter(|&i| !mask[i]).collect();
        assert!(!sat.is_empty() && !exc.is_empty());
        // the satisfiable side must indeed be satisfiable
        assert!(subset_satisfiable(&q, &db, &sat));
        // and splitting it off blames a real join frontier: the two sides
        // joined are unsatisfiable
        assert!(!is_satisfiable(&q, &db, &Assignment::new()));
    }
}
