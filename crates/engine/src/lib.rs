//! # qoco-engine — conjunctive-query evaluation with provenance
//!
//! Evaluates conjunctive queries with inequalities over [`qoco_data`]
//! databases, enumerating *all valid assignments* (paper Section 2) rather
//! than just distinct answers, because the deletion algorithm needs the full
//! witness multiset `A(t, Q, D)` and the insertion algorithm needs partial
//! assignments of subqueries.
//!
//! Modules:
//! * [`assignment`] — (partial) assignments `α : Var(Q) → C`;
//! * [`eval`] — index-backed backtracking join enumeration and
//!   satisfiability checks;
//! * [`witness`] — witnesses `α(body(Q))` and the witness sets of answers;
//! * [`view`] — materialized views with per-answer witness counts,
//!   single-edit deltas and the edit-epoch refresh fallback;
//! * [`whynot`] — the picky-operator analysis standing in for the WhyNot?
//!   system \[60\], used by the Provenance split strategy (Section 5.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod eval;
pub mod monitor;
pub mod view;
pub mod whynot;
pub mod witness;

pub use assignment::Assignment;
pub use eval::{
    all_assignments, answer_set, assignments_for_answer, evaluate, explain, is_satisfiable,
    EvalOptions, EvalResult,
};
pub use monitor::ViewMonitor;
pub use view::{delta_satisfiable, MaterializedView, ViewDelta};
pub use whynot::{frontier_split, why_not};
pub use witness::{witness_of, witnesses_for_answer, Witness};
