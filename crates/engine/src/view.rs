//! First-class materialized views with witness counting.
//!
//! A [`MaterializedView`] caches the answer set of one conjunctive query
//! together with the number of **supporting witnesses** (distinct valid
//! assignments) behind every answer. That count is what makes deletions
//! cheap: an answer leaves the view only when its *last* witness dies, and
//! the view discovers exactly the destroyed witnesses with seeded delta
//! evaluations — it never re-checks `is_satisfiable` per cached answer and
//! never re-evaluates `Q(D)` from scratch.
//!
//! The two delta directions (db already reflects the edit when the view is
//! notified):
//!
//! * **Insert `f`** — a newly valid assignment must ground at least one
//!   body atom to `f` (otherwise it was valid before). For every body atom
//!   unifiable with `f`, evaluate the query seeded by the unifier; every
//!   found assignment grounds that atom to `f` and is therefore new.
//!   Assignments found from several seeds are deduplicated, then each one
//!   increments its answer's witness count.
//! * **Delete `f`** — a destroyed assignment grounded some non-empty set
//!   `S` of body atoms to `f`. For every non-empty subset `S` of the atoms
//!   unifiable with `f`: merge the unifiers of `S` (conflicts ⇒ empty
//!   subset), *remove* the atoms of `S` from the query, substitute the
//!   merged bindings into the rest, and evaluate over the post-delete
//!   database. Atoms outside `S` then match only surviving tuples (≠ `f`),
//!   so the subsets enumerate *disjoint* sets of destroyed assignments and
//!   their counts simply subtract. A query mentions `f`'s relation in at
//!   most a handful of atoms, so the `2^k − 1` subsets stay tiny.
//!
//! Synchronisation is keyed to the [`Relation`](qoco_data::Relation) edit
//! epoch: the view remembers `Database::epoch()` after every sync, and
//! [`MaterializedView::apply_edit`] only takes the delta path when the
//! epoch moved by exactly the one notified edit. Any other movement means
//! out-of-band mutation, and the view falls back to a full
//! [`refresh`](MaterializedView::refresh) (counted in
//! `view.full_refreshes`) instead of serving stale answers.

use std::collections::{BTreeMap, BTreeSet};

use qoco_data::{Database, Edit, EditKind, Fact, Tuple};
use qoco_query::{Atom, ConjunctiveQuery, Inequality, Term};

use crate::assignment::Assignment;
use crate::eval::{all_assignments, is_satisfiable, EvalOptions};

/// Answers that appeared and disappeared after an edit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewDelta {
    /// Answers newly present.
    pub added: Vec<Tuple>,
    /// Answers no longer present.
    pub removed: Vec<Tuple>,
}

impl ViewDelta {
    /// True if the view did not change.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Beyond this many body atoms unifiable with one deleted fact, the subset
/// enumeration is abandoned for a full refresh. Real queries repeat a
/// relation two or three times at most; this is a safety valve, not a
/// tuning knob.
const MAX_DELETE_SEEDS: usize = 6;

/// A materialized answer set with per-answer witness counts, kept
/// incrementally consistent with a database through single-edit deltas.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    query: ConjunctiveQuery,
    /// answer → number of distinct valid assignments producing it.
    counts: BTreeMap<Tuple, u64>,
    /// `Database::epoch()` as of the last synchronisation point.
    db_epoch: u64,
    opts: EvalOptions,
}

impl MaterializedView {
    /// Materialize `query` over `db`.
    pub fn new(query: ConjunctiveQuery, db: &Database) -> Self {
        Self::with_options(query, db, EvalOptions::default())
    }

    /// Materialize with explicit evaluation options (thread count). The
    /// assignment cap is ignored: witness counts must be exact, so the
    /// view always evaluates uncapped.
    pub fn with_options(query: ConjunctiveQuery, db: &Database, opts: EvalOptions) -> Self {
        let opts = EvalOptions {
            max_assignments: usize::MAX,
            ..opts
        };
        let mut view = MaterializedView {
            query,
            counts: BTreeMap::new(),
            db_epoch: 0,
            opts,
        };
        view.refresh(db);
        view
    }

    /// The materialized query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The current materialized answers, sorted (same order as
    /// [`answer_set`](crate::eval::answer_set)).
    pub fn answers(&self) -> Vec<Tuple> {
        self.counts.keys().cloned().collect()
    }

    /// Membership test against the cached answer set.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.counts.contains_key(t)
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The number of witnesses supporting a cached answer (0 if absent).
    pub fn witness_count(&self, t: &Tuple) -> u64 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Does the query mention the relation of this fact?
    pub fn is_relevant(&self, fact: &Fact) -> bool {
        self.query.atoms().iter().any(|a| a.rel == fact.rel)
    }

    /// Re-synchronise with `db` if its epoch moved behind the view's back
    /// (e.g. after out-of-band mutation); no-op when already in sync.
    pub fn sync(&mut self, db: &Database) -> ViewDelta {
        if db.epoch() == self.db_epoch {
            ViewDelta::default()
        } else {
            self.refresh(db)
        }
    }

    /// Full re-materialization: the fallback for out-of-band mutation and
    /// the correctness oracle for tests. Counted in `view.full_refreshes`.
    pub fn refresh(&mut self, db: &Database) -> ViewDelta {
        qoco_telemetry::counter_add("view.full_refreshes", 1);
        let result = all_assignments(&self.query, db, &Assignment::new(), self.opts);
        let mut fresh: BTreeMap<Tuple, u64> = BTreeMap::new();
        for a in &result.assignments {
            let head = a
                .ground_head(&self.query)
                .expect("valid assignments are total");
            *fresh.entry(head).or_insert(0) += 1;
        }
        let added = fresh
            .keys()
            .filter(|t| !self.counts.contains_key(*t))
            .cloned()
            .collect();
        let removed = self
            .counts
            .keys()
            .filter(|t| !fresh.contains_key(*t))
            .cloned()
            .collect();
        self.counts = fresh;
        self.db_epoch = db.epoch();
        ViewDelta { added, removed }
    }

    /// Update the materialization after `edit` was applied to `db` (`db`
    /// must already reflect the edit). Takes the delta path when the
    /// database epoch moved by exactly this one edit; anything else means
    /// the view missed a mutation and it falls back to [`refresh`]
    /// (MaterializedView::refresh). Returns the answer-set delta.
    pub fn apply_edit(&mut self, db: &Database, edit: &Edit) -> ViewDelta {
        let epoch = db.epoch();
        if epoch == self.db_epoch {
            // the edit was a no-op (insert of a present fact / delete of an
            // absent one): the database did not change, neither does the view
            return ViewDelta::default();
        }
        if epoch != self.db_epoch + 1 {
            // more moved than this one edit — out-of-band mutation
            return self.refresh(db);
        }
        if !self.is_relevant(&edit.fact) {
            self.db_epoch = epoch;
            return ViewDelta::default();
        }
        let span = qoco_telemetry::span("view.apply_edit");
        let started = qoco_telemetry::now_ns();
        let delta = match edit.kind {
            EditKind::Insert => Ok(self.delta_insert(db, &edit.fact)),
            EditKind::Delete => self.delta_delete(db, &edit.fact),
        };
        let delta = match delta {
            Ok(d) => {
                qoco_telemetry::counter_add("view.delta_edits", 1);
                if qoco_telemetry::enabled() {
                    qoco_telemetry::histogram_record(
                        "view.delta_apply_ns",
                        qoco_telemetry::now_ns().saturating_sub(started),
                    );
                }
                self.db_epoch = epoch;
                d
            }
            // witness-count underflow or a pathological subset blow-up:
            // never serve a possibly-wrong view, re-materialize instead
            Err(()) => self.refresh(db),
        };
        span.field("added", delta.added.len())
            .field("removed", delta.removed.len())
            .finish();
        delta
    }

    fn delta_insert(&mut self, db: &Database, fact: &Fact) -> ViewDelta {
        let seeds = unify_seeds(&self.query, fact);
        qoco_telemetry::counter_add("eval.delta_probe_hits", seeds.len() as u64);
        let mut added = Vec::new();
        let mut bump = |counts: &mut BTreeMap<Tuple, u64>, a: &Assignment| {
            let head = a
                .ground_head(&self.query)
                .expect("valid assignments are total");
            let c = counts.entry(head.clone()).or_insert(0);
            *c += 1;
            if *c == 1 {
                added.push(head);
            }
        };
        if let [(_, seed)] = seeds.as_slice() {
            // single matching atom: every found assignment is distinct
            for a in &all_assignments(&self.query, db, seed, self.opts).assignments {
                bump(&mut self.counts, a);
            }
        } else {
            // an assignment grounding several atoms to `fact` is found once
            // per seed; count it once
            let mut fresh: BTreeSet<Assignment> = BTreeSet::new();
            for (_, seed) in &seeds {
                fresh.extend(all_assignments(&self.query, db, seed, self.opts).assignments);
            }
            for a in &fresh {
                bump(&mut self.counts, a);
            }
        }
        added.sort();
        ViewDelta {
            added,
            removed: Vec::new(),
        }
    }

    fn delta_delete(&mut self, db: &Database, fact: &Fact) -> Result<ViewDelta, ()> {
        let seeds = unify_seeds(&self.query, fact);
        if seeds.len() > MAX_DELETE_SEEDS {
            return Err(());
        }
        qoco_telemetry::counter_add("eval.delta_probe_hits", seeds.len() as u64);
        let mut dead: BTreeMap<Tuple, u64> = BTreeMap::new();
        for mask in 1u32..(1 << seeds.len()) {
            self.destroyed_for_subset(db, &seeds, mask, &mut dead)?;
        }
        let mut removed = Vec::new();
        for (head, d) in dead {
            match self.counts.get_mut(&head) {
                // underflow would mean the cache was already wrong; bail out
                // to a refresh rather than guess
                None => return Err(()),
                Some(c) if *c < d => return Err(()),
                Some(c) => {
                    *c -= d;
                    if *c == 0 {
                        self.counts.remove(&head);
                        removed.push(head);
                    }
                }
            }
        }
        removed.sort();
        Ok(ViewDelta {
            added: Vec::new(),
            removed,
        })
    }

    /// Accumulate (into `dead`) the answers of every valid-before-the-delete
    /// assignment that grounded *exactly* the atoms selected by `mask` to
    /// the deleted fact.
    fn destroyed_for_subset(
        &self,
        db: &Database,
        seeds: &[(usize, Assignment)],
        mask: u32,
        dead: &mut BTreeMap<Tuple, u64>,
    ) -> Result<(), ()> {
        let mut seed = Assignment::new();
        let mut in_subset = vec![false; self.query.atoms().len()];
        for (bit, (atom_idx, unifier)) in seeds.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                if !seed.merge(unifier) {
                    // conflicting bindings: no assignment grounds exactly
                    // these atoms to the fact
                    return Ok(());
                }
                in_subset[*atom_idx] = true;
            }
        }
        // Inequalities under the merged seed: a ground-violated one kills
        // the whole subset; ground-satisfied ones drop; the rest carry over
        // (their remaining variables live in the surviving atoms).
        let mut rest_ineqs = Vec::new();
        for e in self.query.inequalities() {
            match seed.check_inequality(e) {
                Some(false) => return Ok(()),
                Some(true) => {}
                None => rest_ineqs.push(substitute_inequality(e, &seed)),
            }
        }
        let rest_atoms: Vec<Atom> = self
            .query
            .atoms()
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_subset[*i])
            .map(|(_, a)| substitute_atom(a, &seed))
            .collect();
        if rest_atoms.is_empty() {
            // every atom grounded to the fact: the seed itself is the one
            // destroyed assignment (inequalities already checked above)
            let head = seed
                .ground_head(&self.query)
                .expect("seed over all atoms is total");
            *dead.entry(head).or_insert(0) += 1;
            return Ok(());
        }
        // The subquery keeps the surviving atoms only. Its head carries the
        // remaining variables so construction passes safety validation; the
        // *answer* head is computed from the original query below.
        let mut rest_vars: BTreeSet<_> = BTreeSet::new();
        let head: Vec<Term> = rest_atoms
            .iter()
            .flat_map(|a| a.vars())
            .filter(|v| rest_vars.insert(v.clone()))
            .map(Term::Var)
            .collect();
        let sub = ConjunctiveQuery::new(
            self.query.schema().clone(),
            self.query.name(),
            head,
            rest_atoms,
            rest_ineqs,
        )
        .map_err(|_| ())?;
        for b in &all_assignments(&sub, db, &Assignment::new(), self.opts).assignments {
            let mut full = seed.clone();
            if !full.merge(b) {
                // seed vars were substituted out of the subquery, so the
                // two bind disjoint variables; a conflict is a logic error
                return Err(());
            }
            let head = full
                .ground_head(&self.query)
                .expect("merged assignment is total");
            *dead.entry(head).or_insert(0) += 1;
        }
        Ok(())
    }
}

/// Did inserting `fact` (already applied to `db`) create a witness for `q`,
/// assuming `q` had none before the insertion? Any new witness must ground
/// a body atom to the new fact, so a seeded early-exit probe per unifiable
/// atom answers the question without a full evaluation. Counted in
/// `eval.delta_probe_hits`.
pub fn delta_satisfiable(q: &ConjunctiveQuery, db: &Database, fact: &Fact) -> bool {
    let seeds = unify_seeds(q, fact);
    qoco_telemetry::counter_add("eval.delta_probe_hits", seeds.len() as u64);
    seeds.iter().any(|(_, seed)| is_satisfiable(q, db, seed))
}

/// Unify an atom with a fact: constants must match, variables bind
/// consistently. Returns the induced partial assignment.
pub(crate) fn unify(atom: &Atom, fact: &Fact) -> Option<Assignment> {
    let mut seed = Assignment::new();
    for (term, value) in atom.terms.iter().zip(fact.tuple.values()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => {
                if !seed.bind(v.clone(), value.clone()) {
                    return None;
                }
            }
        }
    }
    Some(seed)
}

/// `(atom index, unifier)` for every body atom of `q` unifiable with
/// `fact`, in body order.
fn unify_seeds(q: &ConjunctiveQuery, fact: &Fact) -> Vec<(usize, Assignment)> {
    q.atoms()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.rel == fact.rel)
        .filter_map(|(i, a)| unify(a, fact).map(|seed| (i, seed)))
        .collect()
}

/// Replace seed-bound variables by their constants.
fn substitute_atom(a: &Atom, seed: &Assignment) -> Atom {
    let terms = a
        .terms
        .iter()
        .map(|t| match seed.ground_term(t) {
            Some(v) => Term::Const(v),
            None => t.clone(),
        })
        .collect();
    Atom::new(a.rel, terms)
}

/// Substitute seed bindings into a not-yet-determined inequality (exactly
/// one side can be bound, otherwise `check_inequality` would have decided
/// it). A bound left side swaps to the right so `lhs` stays a variable.
fn substitute_inequality(e: &Inequality, seed: &Assignment) -> Inequality {
    match (seed.get(&e.lhs), &e.rhs) {
        (Some(v), Term::Var(rhs)) => Inequality::new(rhs.clone(), Term::Const(v.clone())),
        (None, rhs) => match seed.ground_term(rhs) {
            Some(v) => Inequality::new(e.lhs.clone(), Term::Const(v)),
            None => e.clone(),
        },
        // lhs bound and rhs ground would have been decided by the caller
        (Some(_), Term::Const(_)) => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::answer_set;
    use qoco_data::{tup, Schema};
    use qoco_query::parse_query;
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Clubs", &["player", "club"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        db.insert_named("Games", tup!["08.07.90", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        let q = parse_query(
            &schema,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        (schema, db, q)
    }

    #[test]
    fn witness_counts_match_assignment_multiplicity() {
        let (_, db, q) = setup();
        let v = MaterializedView::new(q, &db);
        assert_eq!(v.answers(), vec![tup!["GER"]]);
        // (d1, d2) ∈ {(14, 90), (90, 14)} — two witnesses for GER
        assert_eq!(v.witness_count(&tup!["GER"]), 2);
        assert_eq!(v.witness_count(&tup!["ESP"]), 0);
    }

    #[test]
    fn deletion_decrements_until_last_witness_dies() {
        let (schema, mut db, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        // a third final doubles the (d1, d2) pairs: 3 · 2 = 6 witnesses
        db.insert_named("Games", tup!["30.06.02", "GER", "BRA", "Final", "2:0"])
            .unwrap();
        let mut v = MaterializedView::new(q, &db);
        assert_eq!(v.witness_count(&tup!["GER"]), 6);
        let e1 = Edit::delete(Fact::new(
            games,
            tup!["30.06.02", "GER", "BRA", "Final", "2:0"],
        ));
        db.apply(&e1).unwrap();
        let d1 = v.apply_edit(&db, &e1);
        assert!(d1.is_empty(), "answer survives: {d1:?}");
        assert_eq!(v.witness_count(&tup!["GER"]), 2);
        let e2 = Edit::delete(Fact::new(
            games,
            tup!["08.07.90", "GER", "ARG", "Final", "1:0"],
        ));
        db.apply(&e2).unwrap();
        let d2 = v.apply_edit(&db, &e2);
        assert_eq!(d2.removed, vec![tup!["GER"]], "last witness died");
        assert!(v.is_empty());
    }

    #[test]
    fn insertion_increments_existing_answers() {
        let (schema, mut db, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        let mut v = MaterializedView::new(q, &db);
        let e = Edit::insert(Fact::new(
            games,
            tup!["30.06.02", "GER", "BRA", "Final", "2:0"],
        ));
        db.apply(&e).unwrap();
        let delta = v.apply_edit(&db, &e);
        assert!(delta.is_empty(), "GER was already an answer");
        assert_eq!(v.witness_count(&tup!["GER"]), 6);
    }

    #[test]
    fn epoch_mismatch_falls_back_to_refresh() {
        let (schema, mut db, q) = setup();
        let teams = schema.rel_id("Teams").unwrap();
        let mut v = MaterializedView::new(q, &db);
        // two out-of-band edits, then a notification for only the second:
        // the epoch moved by 2, so the view must re-materialize
        db.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
        let e = Edit::delete(Fact::new(teams, tup!["GER", "EU"]));
        db.apply(&e).unwrap();
        let delta = v.apply_edit(&db, &e);
        assert_eq!(delta.removed, vec![tup!["GER"]]);
        assert_eq!(v.answers(), answer_set(v.query(), &db));
    }

    #[test]
    fn noop_edits_change_nothing() {
        let (schema, mut db, q) = setup();
        let teams = schema.rel_id("Teams").unwrap();
        let mut v = MaterializedView::new(q, &db);
        let e = Edit::insert(Fact::new(teams, tup!["GER", "EU"])); // already present
        assert!(!db.apply(&e).unwrap());
        assert!(v.apply_edit(&db, &e).is_empty());
        assert_eq!(v.witness_count(&tup!["GER"]), 2);
    }

    #[test]
    fn sync_recovers_from_out_of_band_mutation() {
        let (schema, mut db, q) = setup();
        let teams = schema.rel_id("Teams").unwrap();
        let mut v = MaterializedView::new(q, &db);
        db.remove(&Fact::new(teams, tup!["GER", "EU"])).unwrap();
        let delta = v.sync(&db);
        assert_eq!(delta.removed, vec![tup!["GER"]]);
        assert!(v.sync(&db).is_empty(), "second sync is a no-op");
    }

    #[test]
    fn repeated_relation_delete_handles_multi_atom_overlap() {
        // Q(x) :- E(x, y), E(y, x): deleting one fact can destroy
        // assignments using it at either atom or both
        let schema = Schema::builder()
            .relation("E", &["a", "b"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_named("E", tup!["p", "q"]).unwrap();
        db.insert_named("E", tup!["q", "p"]).unwrap();
        db.insert_named("E", tup!["r", "r"]).unwrap();
        let q = parse_query(&schema, "Q(x) :- E(x, y), E(y, x)").unwrap();
        let mut v = MaterializedView::new(q.clone(), &db);
        assert_eq!(v.answers(), answer_set(&q, &db));
        let e_rel = schema.rel_id("E").unwrap();
        // r-r grounds both atoms at once (the S = {1, 2} subset)
        let e = Edit::delete(Fact::new(e_rel, tup!["r", "r"]));
        db.apply(&e).unwrap();
        let delta = v.apply_edit(&db, &e);
        assert_eq!(delta.removed, vec![tup!["r"]]);
        assert_eq!(v.answers(), answer_set(&q, &db));
        // p-q destroys the p and q answers through single-atom subsets
        let e = Edit::delete(Fact::new(e_rel, tup!["p", "q"]));
        db.apply(&e).unwrap();
        let delta = v.apply_edit(&db, &e);
        assert_eq!(delta.removed, vec![tup!["p"], tup!["q"]]);
        assert_eq!(v.answers(), answer_set(&q, &db));
    }

    #[test]
    fn inequalities_prune_delete_subsets() {
        // the d1 != d2 inequality must carry into delete-delta subqueries
        let (schema, mut db, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        let mut v = MaterializedView::new(q.clone(), &db);
        let e = Edit::delete(Fact::new(
            games,
            tup!["13.07.14", "GER", "ARG", "Final", "1:0"],
        ));
        db.apply(&e).unwrap();
        let delta = v.apply_edit(&db, &e);
        // both witnesses used 13.07.14 (at either atom); one game alone
        // cannot satisfy d1 != d2
        assert_eq!(delta.removed, vec![tup!["GER"]]);
        assert_eq!(v.answers(), answer_set(&q, &db));
    }

    #[test]
    fn delta_satisfiable_detects_new_witnesses() {
        let (schema, mut db, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        let teams = schema.rel_id("Teams").unwrap();
        db.remove(&Fact::new(teams, tup!["GER", "EU"])).unwrap();
        assert!(answer_set(&q, &db).is_empty());
        // an unrelated insert creates no witness…
        let f1 = Fact::new(games, tup!["01.01.01", "ITA", "FRA", "Final", "2:1"]);
        db.insert(f1.clone()).unwrap();
        assert!(!delta_satisfiable(&q, &db, &f1));
        // …restoring the Teams row does
        let f2 = Fact::new(teams, tup!["GER", "EU"]);
        db.insert(f2.clone()).unwrap();
        assert!(delta_satisfiable(&q, &db, &f2));
    }
}
