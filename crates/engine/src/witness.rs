//! Witnesses (paper Section 2).
//!
//! For a valid assignment `α` of `Q` w.r.t. `D`, the *witness* is the set of
//! facts `α(body(Q))`. The witnesses of an answer `t ∈ Q(D)` are the
//! witnesses of the assignments in `A(t, Q, D)`; they are the universe the
//! deletion algorithm's hitting-set reasoning runs over (Section 4).

use std::collections::BTreeSet;

use qoco_data::{Database, Fact, Tuple};
use qoco_query::ConjunctiveQuery;

use crate::assignment::Assignment;
use crate::eval::assignments_for_answer;

/// A witness: the set of facts supporting one valid assignment.
///
/// `BTreeSet` keeps fact order deterministic for crowd-question selection.
pub type Witness = BTreeSet<Fact>;

/// The witness of a (total, valid) assignment: all facts in `α(body(Q))`.
///
/// Returns `None` if `α` leaves some atom variable unbound.
pub fn witness_of(q: &ConjunctiveQuery, alpha: &Assignment) -> Option<Witness> {
    let mut w = Witness::new();
    for atom in q.atoms() {
        w.insert(alpha.ground_atom(atom)?);
    }
    Some(w)
}

/// All witnesses for answer `t` of `q` w.r.t. `db`, deduplicated (distinct
/// assignments may ground to the same fact set — e.g. the two date-orderings
/// of Example 2.2 give different assignments but the same witness only when
/// the body is symmetric; we keep set semantics as the hitting-set structure
/// requires).
pub fn witnesses_for_answer(q: &ConjunctiveQuery, db: &Database, t: &Tuple) -> Vec<Witness> {
    let span = qoco_telemetry::span("engine.witnesses");
    let mut out: Vec<Witness> = assignments_for_answer(q, db, t)
        .iter()
        .map(|a| witness_of(q, a).expect("valid assignments are total"))
        .collect();
    out.sort();
    out.dedup();
    span.field("witnesses", out.len()).finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Schema, Value};
    use qoco_query::{parse_query, Var};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        for (d, w, r, s, u) in [
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("12.07.98", "ESP", "NED", "Final", "4:2"),
            ("17.07.94", "ESP", "NED", "Final", "3:1"),
            ("25.06.78", "ESP", "NED", "Final", "1:0"),
        ] {
            db.insert_named("Games", tup![d, w, r, s, u]).unwrap();
        }
        db.insert_named("Teams", tup!["ESP", "EU"]).unwrap();
        let q = parse_query(
            &schema,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        (schema, db, q)
    }

    #[test]
    fn example_4_6_esp_has_six_witnesses() {
        // ESP won 4 finals in D; unordered pairs of distinct dates = C(4,2)
        // = 6 witnesses (the paper's w1…w6), each of 3 facts.
        let (_, db, q) = setup();
        let ws = witnesses_for_answer(&q, &db, &tup!["ESP"]);
        assert_eq!(ws.len(), 6);
        for w in &ws {
            assert_eq!(
                w.len(),
                3,
                "each witness has two Games facts plus Teams(ESP,EU)"
            );
        }
    }

    #[test]
    fn teams_fact_occurs_in_every_witness() {
        let (schema, db, q) = setup();
        let teams = schema.rel_id("Teams").unwrap();
        let t3 = Fact::new(teams, tup!["ESP", "EU"]);
        let ws = witnesses_for_answer(&q, &db, &tup!["ESP"]);
        assert!(ws.iter().all(|w| w.contains(&t3)));
    }

    #[test]
    fn witness_of_partial_assignment_is_none() {
        let (_, _, q) = setup();
        let partial = Assignment::from_pairs([(Var::new("x"), Value::text("ESP"))]);
        assert!(witness_of(&q, &partial).is_none());
    }

    #[test]
    fn witness_of_total_assignment_collects_ground_atoms() {
        let (schema, db, q) = setup();
        let asgs = assignments_for_answer(&q, &db, &tup!["ESP"]);
        let w = witness_of(&q, &asgs[0]).unwrap();
        assert_eq!(w.len(), 3);
        let games = schema.rel_id("Games").unwrap();
        assert_eq!(w.iter().filter(|f| f.rel == games).count(), 2);
    }

    #[test]
    fn no_witnesses_for_non_answer() {
        let (_, db, q) = setup();
        assert!(witnesses_for_answer(&q, &db, &tup!["ITA"]).is_empty());
    }
}
