//! View monitoring with incremental deltas.
//!
//! The paper's deployment story (Section 1): "after the data is cleaned
//! with traditional techniques, QOCO can be activated to *monitor the
//! views* that are served to users/applications. Whenever an error is
//! reported in a view, QOCO can take over." A [`ViewMonitor`] keeps the
//! materialized answers of one query and updates them per edit without
//! full re-evaluation.
//!
//! The monitor is a thin façade over [`MaterializedView`], which holds the
//! real machinery: per-answer witness counts, seeded insert/delete deltas,
//! and the edit-epoch fallback to a full refresh (see [`crate::view`]).
//! Earlier revisions re-checked `is_satisfiable` for every cached answer
//! on each deletion and cloned the query's atom list on each insertion;
//! witness counting removed both the per-answer probes and the per-edit
//! allocations.

use qoco_data::{Database, Edit, Fact, Tuple};
use qoco_query::ConjunctiveQuery;

use crate::view::MaterializedView;
pub use crate::view::ViewDelta;

/// A monitored materialized view.
#[derive(Debug, Clone)]
pub struct ViewMonitor {
    view: MaterializedView,
}

impl ViewMonitor {
    /// Materialize `q` over `db`.
    pub fn new(query: ConjunctiveQuery, db: &Database) -> Self {
        ViewMonitor {
            view: MaterializedView::new(query, db),
        }
    }

    /// The monitored query.
    pub fn query(&self) -> &ConjunctiveQuery {
        self.view.query()
    }

    /// The current materialized answers, sorted.
    pub fn answers(&self) -> Vec<Tuple> {
        self.view.answers()
    }

    /// Does the query mention the relation of this fact?
    pub fn is_relevant(&self, fact: &Fact) -> bool {
        self.view.is_relevant(fact)
    }

    /// Update the materialization after `edit` was applied to `db`
    /// (`db` must already reflect the edit). Returns the delta.
    pub fn apply_edit(&mut self, db: &Database, edit: &Edit) -> ViewDelta {
        let span = qoco_telemetry::span("monitor.apply_edit");
        let probe_start = qoco_telemetry::now_ns();
        let delta = self.view.apply_edit(db, edit);
        if qoco_telemetry::enabled() {
            qoco_telemetry::histogram_record(
                "monitor.delta_probe_ns",
                qoco_telemetry::now_ns().saturating_sub(probe_start),
            );
        }
        span.field("added", delta.added.len())
            .field("removed", delta.removed.len())
            .finish();
        delta
    }

    /// Full re-materialization (used as a fallback and by tests as the
    /// correctness oracle).
    pub fn refresh(&mut self, db: &Database) -> ViewDelta {
        self.view.refresh(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::answer_set;
    use crate::view::unify;
    use qoco_data::{tup, Schema, Value};
    use qoco_query::parse_query;
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Clubs", &["player", "club"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        db.insert_named("Games", tup!["08.07.90", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        let q = parse_query(
            &schema,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        (schema, db, q)
    }

    #[test]
    fn initial_materialization() {
        let (_, db, q) = setup();
        let m = ViewMonitor::new(q, &db);
        assert_eq!(m.answers(), vec![tup!["GER"]]);
    }

    #[test]
    fn irrelevant_edits_are_free() {
        let (schema, mut db, q) = setup();
        let clubs = schema.rel_id("Clubs").unwrap();
        let mut m = ViewMonitor::new(q, &db);
        let e = Edit::insert(Fact::new(clubs, tup!["X", "Bayern"]));
        db.apply(&e).unwrap();
        let delta = m.apply_edit(&db, &e);
        assert!(delta.is_empty());
        assert!(!m.is_relevant(&e.fact));
    }

    #[test]
    fn insertion_delta_detects_new_answer() {
        let (schema, mut db, q) = setup();
        let mut m = ViewMonitor::new(q, &db);
        // ESP needs two finals and a Teams row; add them one by one
        let games = schema.rel_id("Games").unwrap();
        let teams = schema.rel_id("Teams").unwrap();
        let edits = [
            Edit::insert(Fact::new(
                games,
                tup!["11.07.10", "ESP", "NED", "Final", "1:0"],
            )),
            Edit::insert(Fact::new(
                games,
                tup!["12.07.98", "ESP", "NED", "Final", "4:2"],
            )),
            Edit::insert(Fact::new(teams, tup!["ESP", "EU"])),
        ];
        let mut last = ViewDelta::default();
        for e in &edits {
            db.apply(e).unwrap();
            last = m.apply_edit(&db, e);
        }
        assert_eq!(last.added, vec![tup!["ESP"]]);
        assert_eq!(m.answers(), vec![tup!["ESP"], tup!["GER"]]);
    }

    #[test]
    fn deletion_delta_detects_removed_answer() {
        let (schema, mut db, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        let mut m = ViewMonitor::new(q, &db);
        let e = Edit::delete(Fact::new(
            games,
            tup!["08.07.90", "GER", "ARG", "Final", "1:0"],
        ));
        db.apply(&e).unwrap();
        let delta = m.apply_edit(&db, &e);
        assert_eq!(delta.removed, vec![tup!["GER"]]);
        assert!(m.answers().is_empty());
    }

    #[test]
    fn surviving_answers_stay_on_deletion() {
        let (schema, mut db, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        // a third GER final: deleting one still leaves two
        let extra = Fact::new(games, tup!["30.06.02", "GER", "BRA", "Final", "2:0"]);
        db.insert(extra.clone()).unwrap();
        let mut m = ViewMonitor::new(q, &db);
        let e = Edit::delete(extra);
        db.apply(&e).unwrap();
        let delta = m.apply_edit(&db, &e);
        assert!(delta.is_empty());
        assert_eq!(m.answers(), vec![tup!["GER"]]);
    }

    #[test]
    fn incremental_matches_full_recompute_on_random_edit_sequences() {
        let (schema, db0, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        let teams = schema.rel_id("Teams").unwrap();
        // a deterministic pseudo-random edit stream
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let countries = ["GER", "ESP", "ITA", "BRA"];
        let dates = ["01.01.01", "02.02.02", "03.03.03", "04.04.04"];
        let mut db = db0.clone();
        let mut m = ViewMonitor::new(q.clone(), &db);
        for step in 0..200 {
            let c = countries[(next() % 4) as usize];
            let e = if next() % 3 == 0 {
                let fact = Fact::new(teams, tup![c, "EU"]);
                if next() % 2 == 0 {
                    Edit::insert(fact)
                } else {
                    Edit::delete(fact)
                }
            } else {
                let d = dates[(next() % 4) as usize];
                let fact = Fact::new(games, tup![d, c, "ARG", "Final", "1:0"]);
                if next() % 2 == 0 {
                    Edit::insert(fact)
                } else {
                    Edit::delete(fact)
                }
            };
            db.apply(&e).unwrap();
            m.apply_edit(&db, &e);
            let expected: Vec<Tuple> = answer_set(&q, &db);
            assert_eq!(
                m.answers(),
                expected,
                "divergence at step {step} after {e:?}"
            );
        }
    }

    #[test]
    fn unify_respects_constants_and_repeated_vars() {
        let (schema, _, q) = setup();
        let games_atom = &q.atoms()[0];
        let games = schema.rel_id("Games").unwrap();
        // stage constant "Final" must match
        let non_final = Fact::new(games, tup!["d", "X", "Y", "Group", "1:0"]);
        assert!(unify(games_atom, &non_final).is_none());
        let final_game = Fact::new(games, tup!["d", "X", "Y", "Final", "1:0"]);
        let seed = unify(games_atom, &final_game).unwrap();
        assert_eq!(
            seed.get(&qoco_query::Var::new("x")),
            Some(&Value::text("X"))
        );
        // repeated variables: E(v, v) unifies only with equal columns
        let s2 = Schema::builder()
            .relation("E", &["a", "b"])
            .build()
            .unwrap();
        let q2 = parse_query(&s2, "(v) :- E(v, v)").unwrap();
        let e_rel = s2.rel_id("E").unwrap();
        assert!(unify(&q2.atoms()[0], &Fact::new(e_rel, tup!["p", "q"])).is_none());
        assert!(unify(&q2.atoms()[0], &Fact::new(e_rel, tup!["p", "p"])).is_some());
    }

    #[test]
    fn refresh_resynchronizes() {
        let (schema, mut db, q) = setup();
        let teams = schema.rel_id("Teams").unwrap();
        let mut m = ViewMonitor::new(q, &db);
        // mutate behind the monitor's back
        db.remove(&Fact::new(teams, tup!["GER", "EU"])).unwrap();
        let delta = m.refresh(&db);
        assert_eq!(delta.removed, vec![tup!["GER"]]);
        assert!(m.answers().is_empty());
    }
}
