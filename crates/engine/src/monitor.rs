//! View monitoring with incremental deltas.
//!
//! The paper's deployment story (Section 1): "after the data is cleaned
//! with traditional techniques, QOCO can be activated to *monitor the
//! views* that are served to users/applications. Whenever an error is
//! reported in a view, QOCO can take over." A [`ViewMonitor`] keeps the
//! materialized answers of one query and updates them per edit without full
//! re-evaluation:
//!
//! * an **insertion** can only create answers whose witness uses the new
//!   fact, so the monitor evaluates the query seeded by unifying each
//!   matching body atom with the new fact (semi-naïve delta);
//! * a **deletion** can only remove answers, so the monitor re-checks the
//!   satisfiability of each cached answer (fast per-answer probes);
//! * edits on relations the query never mentions are free.

use std::collections::BTreeSet;

use qoco_data::{Database, Edit, EditKind, Fact, Tuple};
use qoco_query::{Atom, ConjunctiveQuery, Term};

use crate::assignment::Assignment;
use crate::eval::{all_assignments, answer_set, is_satisfiable, EvalOptions};

/// Answers that appeared and disappeared after an edit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewDelta {
    /// Answers newly present.
    pub added: Vec<Tuple>,
    /// Answers no longer present.
    pub removed: Vec<Tuple>,
}

impl ViewDelta {
    /// True if the view did not change.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A monitored materialized view.
#[derive(Debug, Clone)]
pub struct ViewMonitor {
    query: ConjunctiveQuery,
    answers: BTreeSet<Tuple>,
}

impl ViewMonitor {
    /// Materialize `q` over `db`.
    pub fn new(query: ConjunctiveQuery, db: &Database) -> Self {
        let answers = answer_set(&query, db).into_iter().collect();
        ViewMonitor { query, answers }
    }

    /// The monitored query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The current materialized answers, sorted.
    pub fn answers(&self) -> Vec<Tuple> {
        self.answers.iter().cloned().collect()
    }

    /// Does the query mention the relation of this fact?
    pub fn is_relevant(&self, fact: &Fact) -> bool {
        self.query.atoms().iter().any(|a| a.rel == fact.rel)
    }

    /// Update the materialization after `edit` was applied to `db`
    /// (`db` must already reflect the edit). Returns the delta.
    pub fn apply_edit(&mut self, db: &Database, edit: &Edit) -> ViewDelta {
        if !self.is_relevant(&edit.fact) {
            return ViewDelta::default();
        }
        let span = qoco_telemetry::span("monitor.apply_edit");
        let probe_start = qoco_telemetry::now_ns();
        let delta = match edit.kind {
            EditKind::Insert => self.delta_insert(db, &edit.fact),
            EditKind::Delete => self.delta_delete(db),
        };
        if qoco_telemetry::enabled() {
            qoco_telemetry::histogram_record(
                "monitor.delta_probe_ns",
                qoco_telemetry::now_ns().saturating_sub(probe_start),
            );
        }
        span.field("added", delta.added.len())
            .field("removed", delta.removed.len())
            .finish();
        delta
    }

    /// Full re-materialization (used as a fallback and by tests as the
    /// correctness oracle).
    pub fn refresh(&mut self, db: &Database) -> ViewDelta {
        let fresh: BTreeSet<Tuple> = answer_set(&self.query, db).into_iter().collect();
        let added = fresh.difference(&self.answers).cloned().collect();
        let removed = self.answers.difference(&fresh).cloned().collect();
        self.answers = fresh;
        ViewDelta { added, removed }
    }

    fn delta_insert(&mut self, db: &Database, fact: &Fact) -> ViewDelta {
        let mut added = Vec::new();
        for atom in self.query.atoms().to_vec() {
            if atom.rel != fact.rel {
                continue;
            }
            let Some(seed) = unify(&atom, fact) else {
                continue;
            };
            let result = all_assignments(&self.query, db, &seed, EvalOptions::default());
            for a in result.assignments {
                let head = a
                    .ground_head(&self.query)
                    .expect("valid assignments are total");
                if self.answers.insert(head.clone()) {
                    added.push(head);
                }
            }
        }
        added.sort();
        added.dedup();
        ViewDelta {
            added,
            removed: Vec::new(),
        }
    }

    fn delta_delete(&mut self, db: &Database) -> ViewDelta {
        let mut removed = Vec::new();
        for t in self.answers.iter().cloned().collect::<Vec<_>>() {
            let Some(seed) = Assignment::from_answer(&self.query, &t) else {
                // cannot happen for cached answers, but degrade gracefully
                continue;
            };
            if !is_satisfiable(&self.query, db, &seed) {
                self.answers.remove(&t);
                removed.push(t);
            }
        }
        removed.sort();
        ViewDelta {
            added: Vec::new(),
            removed,
        }
    }
}

/// Unify an atom with a fact: constants must match, variables bind
/// consistently. Returns the induced partial assignment.
fn unify(atom: &Atom, fact: &Fact) -> Option<Assignment> {
    let mut seed = Assignment::new();
    for (term, value) in atom.terms.iter().zip(fact.tuple.values()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => {
                if !seed.bind(v.clone(), value.clone()) {
                    return None;
                }
            }
        }
    }
    Some(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Schema, Value};
    use qoco_query::parse_query;
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Database, ConjunctiveQuery) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Clubs", &["player", "club"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_named("Games", tup!["13.07.14", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        db.insert_named("Games", tup!["08.07.90", "GER", "ARG", "Final", "1:0"])
            .unwrap();
        db.insert_named("Teams", tup!["GER", "EU"]).unwrap();
        let q = parse_query(
            &schema,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap();
        (schema, db, q)
    }

    #[test]
    fn initial_materialization() {
        let (_, db, q) = setup();
        let m = ViewMonitor::new(q, &db);
        assert_eq!(m.answers(), vec![tup!["GER"]]);
    }

    #[test]
    fn irrelevant_edits_are_free() {
        let (schema, mut db, q) = setup();
        let clubs = schema.rel_id("Clubs").unwrap();
        let mut m = ViewMonitor::new(q, &db);
        let e = Edit::insert(Fact::new(clubs, tup!["X", "Bayern"]));
        db.apply(&e).unwrap();
        let delta = m.apply_edit(&db, &e);
        assert!(delta.is_empty());
        assert!(!m.is_relevant(&e.fact));
    }

    #[test]
    fn insertion_delta_detects_new_answer() {
        let (schema, mut db, q) = setup();
        let mut m = ViewMonitor::new(q, &db);
        // ESP needs two finals and a Teams row; add them one by one
        let games = schema.rel_id("Games").unwrap();
        let teams = schema.rel_id("Teams").unwrap();
        let edits = [
            Edit::insert(Fact::new(
                games,
                tup!["11.07.10", "ESP", "NED", "Final", "1:0"],
            )),
            Edit::insert(Fact::new(
                games,
                tup!["12.07.98", "ESP", "NED", "Final", "4:2"],
            )),
            Edit::insert(Fact::new(teams, tup!["ESP", "EU"])),
        ];
        let mut last = ViewDelta::default();
        for e in &edits {
            db.apply(e).unwrap();
            last = m.apply_edit(&db, e);
        }
        assert_eq!(last.added, vec![tup!["ESP"]]);
        assert_eq!(m.answers(), vec![tup!["ESP"], tup!["GER"]]);
    }

    #[test]
    fn deletion_delta_detects_removed_answer() {
        let (schema, mut db, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        let mut m = ViewMonitor::new(q, &db);
        let e = Edit::delete(Fact::new(
            games,
            tup!["08.07.90", "GER", "ARG", "Final", "1:0"],
        ));
        db.apply(&e).unwrap();
        let delta = m.apply_edit(&db, &e);
        assert_eq!(delta.removed, vec![tup!["GER"]]);
        assert!(m.answers().is_empty());
    }

    #[test]
    fn surviving_answers_stay_on_deletion() {
        let (schema, mut db, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        // a third GER final: deleting one still leaves two
        let extra = Fact::new(games, tup!["30.06.02", "GER", "BRA", "Final", "2:0"]);
        db.insert(extra.clone()).unwrap();
        let mut m = ViewMonitor::new(q, &db);
        let e = Edit::delete(extra);
        db.apply(&e).unwrap();
        let delta = m.apply_edit(&db, &e);
        assert!(delta.is_empty());
        assert_eq!(m.answers(), vec![tup!["GER"]]);
    }

    #[test]
    fn incremental_matches_full_recompute_on_random_edit_sequences() {
        let (schema, db0, q) = setup();
        let games = schema.rel_id("Games").unwrap();
        let teams = schema.rel_id("Teams").unwrap();
        // a deterministic pseudo-random edit stream
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let countries = ["GER", "ESP", "ITA", "BRA"];
        let dates = ["01.01.01", "02.02.02", "03.03.03", "04.04.04"];
        let mut db = db0.clone();
        let mut m = ViewMonitor::new(q.clone(), &db);
        for step in 0..200 {
            let c = countries[(next() % 4) as usize];
            let e = if next() % 3 == 0 {
                let fact = Fact::new(teams, tup![c, "EU"]);
                if next() % 2 == 0 {
                    Edit::insert(fact)
                } else {
                    Edit::delete(fact)
                }
            } else {
                let d = dates[(next() % 4) as usize];
                let fact = Fact::new(games, tup![d, c, "ARG", "Final", "1:0"]);
                if next() % 2 == 0 {
                    Edit::insert(fact)
                } else {
                    Edit::delete(fact)
                }
            };
            db.apply(&e).unwrap();
            m.apply_edit(&db, &e);
            let expected: Vec<Tuple> = answer_set(&q, &db);
            assert_eq!(
                m.answers(),
                expected,
                "divergence at step {step} after {e:?}"
            );
        }
    }

    #[test]
    fn unify_respects_constants_and_repeated_vars() {
        let (schema, _, q) = setup();
        let games_atom = &q.atoms()[0];
        let games = schema.rel_id("Games").unwrap();
        // stage constant "Final" must match
        let non_final = Fact::new(games, tup!["d", "X", "Y", "Group", "1:0"]);
        assert!(unify(games_atom, &non_final).is_none());
        let final_game = Fact::new(games, tup!["d", "X", "Y", "Final", "1:0"]);
        let seed = unify(games_atom, &final_game).unwrap();
        assert_eq!(
            seed.get(&qoco_query::Var::new("x")),
            Some(&Value::text("X"))
        );
        // repeated variables: E(v, v) unifies only with equal columns
        let s2 = Schema::builder()
            .relation("E", &["a", "b"])
            .build()
            .unwrap();
        let q2 = parse_query(&s2, "(v) :- E(v, v)").unwrap();
        let e_rel = s2.rel_id("E").unwrap();
        assert!(unify(&q2.atoms()[0], &Fact::new(e_rel, tup!["p", "q"])).is_none());
        assert!(unify(&q2.atoms()[0], &Fact::new(e_rel, tup!["p", "p"])).is_some());
    }

    #[test]
    fn refresh_resynchronizes() {
        let (schema, mut db, q) = setup();
        let teams = schema.rel_id("Teams").unwrap();
        let mut m = ViewMonitor::new(q, &db);
        // mutate behind the monitor's back
        db.remove(&Fact::new(teams, tup!["GER", "EU"])).unwrap();
        let delta = m.refresh(&db);
        assert_eq!(delta.removed, vec![tup!["GER"]]);
        assert!(m.answers().is_empty());
    }
}
