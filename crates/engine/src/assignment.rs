//! Assignments `α : Var(Q) → C` (paper Section 2).
//!
//! An [`Assignment`] may be *partial*. It is *valid* w.r.t. a database if
//! grounding every body atom yields a fact of the database and every
//! inequality holds; it is *satisfiable* if it extends to a valid total
//! assignment (checked in [`crate::eval`]).

use std::collections::BTreeMap;
use std::fmt;

use qoco_data::{Fact, Tuple, Value};
use qoco_query::{Atom, ConjunctiveQuery, Inequality, Term, Var};

/// A (partial) mapping from query variables to constants.
///
/// Backed by a `BTreeMap` so iteration (and hence everything built on it:
/// witness ordering, crowd-question ordering, figures) is deterministic.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Assignment {
    map: BTreeMap<Var, Value>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Value)>) -> Self {
        Assignment {
            map: pairs.into_iter().collect(),
        }
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: &Var) -> Option<&Value> {
        self.map.get(v)
    }

    /// Bind `v := value`. Returns `false` (and leaves the binding unchanged)
    /// if `v` is already bound to a *different* value.
    pub fn bind(&mut self, v: Var, value: Value) -> bool {
        match self.map.get(&v) {
            Some(existing) => *existing == value,
            None => {
                self.map.insert(v, value);
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over `(Var, Value)` bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Value)> {
        self.map.iter()
    }

    /// Is this a total assignment for `q` (binds every variable of the
    /// body)?
    pub fn is_total_for(&self, q: &ConjunctiveQuery) -> bool {
        q.vars().iter().all(|v| self.map.contains_key(v))
    }

    /// The unbound variables of `q` under this assignment.
    pub fn unbound_vars(&self, q: &ConjunctiveQuery) -> Vec<Var> {
        q.vars()
            .into_iter()
            .filter(|v| !self.map.contains_key(v))
            .collect()
    }

    /// Ground a term: constants pass through, bound variables are replaced,
    /// unbound variables yield `None`.
    pub fn ground_term(&self, t: &Term) -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => self.map.get(v).cloned(),
        }
    }

    /// Ground an atom into a fact, or `None` if any variable is unbound.
    pub fn ground_atom(&self, a: &Atom) -> Option<Fact> {
        let mut vals = Vec::with_capacity(a.terms.len());
        for t in &a.terms {
            vals.push(self.ground_term(t)?);
        }
        Some(Fact::new(a.rel, Tuple::new(vals)))
    }

    /// Check an inequality under this assignment. Returns:
    /// * `Some(true)` — both sides ground and different;
    /// * `Some(false)` — both sides ground and equal (violated);
    /// * `None` — at least one side unbound (undetermined).
    pub fn check_inequality(&self, e: &Inequality) -> Option<bool> {
        let lhs = self.map.get(&e.lhs)?;
        let rhs = self.ground_term(&e.rhs)?;
        Some(*lhs != rhs)
    }

    /// `α(head(Q))`: the answer tuple induced by this assignment, or `None`
    /// if a head variable is unbound.
    pub fn ground_head(&self, q: &ConjunctiveQuery) -> Option<Tuple> {
        let mut vals = Vec::with_capacity(q.head().len());
        for t in q.head() {
            vals.push(self.ground_term(t)?);
        }
        Some(Tuple::new(vals))
    }

    /// The partial assignment induced by an answer tuple `t` of `q` — maps
    /// each head variable to the corresponding value ("with abuse of
    /// notation we refer to `t` also as a partial assignment", Section 2).
    ///
    /// Returns `None` if `t`'s width differs from the head or if a repeated
    /// head variable would receive conflicting values.
    pub fn from_answer(q: &ConjunctiveQuery, t: &Tuple) -> Option<Assignment> {
        if t.arity() != q.head().len() {
            return None;
        }
        let mut a = Assignment::new();
        for (term, v) in q.head().iter().zip(t.values()) {
            match term {
                Term::Var(var) => {
                    if !a.bind(var.clone(), v.clone()) {
                        return None;
                    }
                }
                Term::Const(c) => {
                    if c != v {
                        return None;
                    }
                }
            }
        }
        Some(a)
    }

    /// Merge another assignment into this one; fails (returning `false`)
    /// on any conflicting binding. On failure `self` may hold a prefix of
    /// `other`'s bindings, so callers should treat it as poisoned.
    pub fn merge(&mut self, other: &Assignment) -> bool {
        for (v, val) in other.iter() {
            if !self.bind(v.clone(), val.clone()) {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, val)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {val}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{Schema, Value};
    use qoco_query::parse_query;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("Teams", &["country", "continent"])
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .build()
            .unwrap()
    }

    fn q1(s: &Arc<Schema>) -> ConjunctiveQuery {
        parse_query(
            s,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap()
    }

    #[test]
    fn bind_rejects_conflicts() {
        let mut a = Assignment::new();
        assert!(a.bind(Var::new("x"), Value::text("GER")));
        assert!(a.bind(Var::new("x"), Value::text("GER"))); // same value ok
        assert!(!a.bind(Var::new("x"), Value::text("ESP")));
        assert_eq!(a.get(&Var::new("x")), Some(&Value::text("GER")));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn ground_atom_requires_all_vars() {
        let s = schema();
        let q = q1(&s);
        let teams_atom = &q.atoms()[2];
        let mut a = Assignment::new();
        assert!(a.ground_atom(teams_atom).is_none());
        a.bind(Var::new("x"), Value::text("GER"));
        let f = a.ground_atom(teams_atom).unwrap();
        assert_eq!(f.tuple.values()[0], Value::text("GER"));
        assert_eq!(f.tuple.values()[1], Value::text("EU"));
    }

    #[test]
    fn inequality_three_states() {
        let s = schema();
        let q = q1(&s);
        let e = &q.inequalities()[0];
        let mut a = Assignment::new();
        assert_eq!(a.check_inequality(e), None);
        a.bind(Var::new("d1"), Value::text("13.07.14"));
        assert_eq!(a.check_inequality(e), None);
        a.bind(Var::new("d2"), Value::text("13.07.14"));
        assert_eq!(a.check_inequality(e), Some(false));
        let mut b = Assignment::new();
        b.bind(Var::new("d1"), Value::text("13.07.14"));
        b.bind(Var::new("d2"), Value::text("08.07.90"));
        assert_eq!(b.check_inequality(e), Some(true));
    }

    #[test]
    fn totality_and_unbound_vars() {
        let s = schema();
        let q = q1(&s);
        let mut a = Assignment::new();
        assert!(!a.is_total_for(&q));
        for v in q.vars() {
            a.bind(v, Value::text("v"));
        }
        // all same value violates d1 != d2 but totality is syntactic
        assert!(a.is_total_for(&q));
        assert!(a.unbound_vars(&q).is_empty());
    }

    #[test]
    fn from_answer_builds_head_binding() {
        let s = schema();
        let q = q1(&s);
        let a = Assignment::from_answer(&q, &qoco_data::tup!["GER"]).unwrap();
        assert_eq!(a.get(&Var::new("x")), Some(&Value::text("GER")));
        assert!(Assignment::from_answer(&q, &qoco_data::tup!["a", "b"]).is_none());
    }

    #[test]
    fn from_answer_rejects_conflicting_duplicates() {
        let s = schema();
        let q = parse_query(&s, r#"(x, x) :- Teams(x, c)"#).unwrap();
        assert!(Assignment::from_answer(&q, &qoco_data::tup!["a", "b"]).is_none());
        assert!(Assignment::from_answer(&q, &qoco_data::tup!["a", "a"]).is_some());
    }

    #[test]
    fn ground_head_matches_answer() {
        let s = schema();
        let q = q1(&s);
        let mut a = Assignment::new();
        a.bind(Var::new("x"), Value::text("ITA"));
        assert_eq!(a.ground_head(&q), Some(qoco_data::tup!["ITA"]));
    }

    #[test]
    fn merge_detects_conflicts() {
        let mut a = Assignment::from_pairs([(Var::new("x"), Value::text("1"))]);
        let b = Assignment::from_pairs([
            (Var::new("x"), Value::text("1")),
            (Var::new("y"), Value::text("2")),
        ]);
        assert!(a.merge(&b));
        assert_eq!(a.len(), 2);
        let c = Assignment::from_pairs([(Var::new("y"), Value::text("3"))]);
        let mut a2 = a.clone();
        assert!(!a2.merge(&c));
    }

    #[test]
    fn debug_is_deterministic() {
        let a = Assignment::from_pairs([
            (Var::new("z"), Value::text("1")),
            (Var::new("a"), Value::text("2")),
        ]);
        assert_eq!(format!("{a:?}"), "{a ↦ 2, z ↦ 1}");
    }
}
