//! Query evaluation: enumerate the valid assignments `A(Q, D)`.
//!
//! The engine runs a backtracking *generic join*: atoms are ordered greedily
//! by **estimated cardinality** — the exact posting-list length when a term's
//! value is known at plan time (constants and seed bindings), `len/distinct`
//! for variables bound by earlier plan steps, ties broken by bound-term
//! count then atom index. Candidate tuples come straight from the pre-sorted
//! posting lists of [`qoco_data::Relation`] (zero-copy `&[TupleId]` slices) —
//! probing the *shortest* posting among the bound columns — and inequalities
//! are checked as soon as both sides are ground. When the root atom is an
//! unavoidable full scan, a semi-join pre-filter drops candidates whose
//! join-variable values have empty postings in a partner atom before any
//! descent happens. Enumeration is exhaustive because the deletion algorithm
//! needs *every* witness of a wrong answer, not just one.
//!
//! All three choices (atom order, probe column, pre-filter) are pure
//! functions of the database contents, and postings share one global tuple
//! order — so the assignment stream is bit-identical across thread counts
//! and to the pre-optimization engine.
//!
//! The whole read path takes `&Database`: indexes build lazily behind
//! `OnceLock` cells inside each relation, so evaluation never needs a
//! mutable borrow and can fan out across threads.
//!
//! ## Parallelism and determinism
//!
//! When more than one thread is available (see [`EvalOptions::threads`] and
//! `RAYON_NUM_THREADS`), the top-level candidate loop is split into
//! contiguous chunks evaluated in parallel; the per-chunk result vectors
//! are concatenated **in chunk order**, which equals sequential discovery
//! order. Truncation via [`EvalOptions::max_assignments`] uses a shared
//! array of atomic counters: a branch withholds a push only when the
//! already-recorded assignments *preceding it in merge order* reach the
//! cap, so the retained prefix — and the `truncated` flag — are
//! bit-identical to a sequential run. Candidate lists are pre-sorted, so
//! evaluation order — and everything downstream: witness order,
//! crowd-question order, figures — is deterministic regardless of thread
//! count.

use std::cmp::Reverse;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use qoco_data::{Database, Relation, Tuple, TupleId, Value};
use qoco_query::{ConjunctiveQuery, Term};
use rayon::prelude::*;

use crate::assignment::Assignment;

/// Below this many top-level candidates a parallel fan-out costs more in
/// thread spawns than it saves; evaluate sequentially.
const PAR_MIN_CANDIDATES: usize = 16;

/// Below this many root candidates the semi-join pre-filter cannot pay for
/// its per-candidate hash lookups; descend directly.
const SEMIJOIN_MIN_CANDIDATES: usize = 64;

/// Candidates inspected by the pre-filter's deterministic prefix sample;
/// if fewer than 1/8 of them are prunable the filter is abandoned.
const SEMIJOIN_SAMPLE: usize = 128;

/// Options controlling evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Stop after this many valid assignments (safety valve for pathological
    /// joins; `usize::MAX` = unlimited).
    pub max_assignments: usize,
    /// Worker threads for the top-level candidate loop. `None` = use
    /// `rayon::current_num_threads()` (which honours `RAYON_NUM_THREADS`);
    /// `Some(1)` forces sequential evaluation. Results are identical for
    /// every setting.
    pub threads: Option<usize>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_assignments: usize::MAX,
            threads: None,
        }
    }
}

/// The result of evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalResult {
    /// All valid assignments, in deterministic order.
    pub assignments: Vec<Assignment>,
    /// True if enumeration stopped at `max_assignments`.
    pub truncated: bool,
}

impl EvalResult {
    /// The distinct answers `Q(D) = ∪ α(head(Q))`, sorted.
    pub fn answers(&self, q: &ConjunctiveQuery) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .assignments
            .iter()
            .map(|a| a.ground_head(q).expect("valid assignments are total"))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Shared truncation budget for one parallel evaluation: `found[i]` counts
/// assignments already retained by chunk `i`. A branch consults only the
/// counters of chunks at or before its own position — those assignments
/// all precede its future finds in merge order, so stopping on them can
/// never drop an assignment a sequential run would have kept.
struct Budget<'a> {
    chunk: usize,
    found: &'a [AtomicUsize],
    limit: usize,
}

impl Budget<'_> {
    /// Lower bound on the number of retained assignments that precede this
    /// branch's next find in merge order.
    fn preceding(&self) -> usize {
        self.found[..=self.chunk]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    fn record(&self) {
        self.found[self.chunk].fetch_add(1, Ordering::Relaxed);
    }
}

/// The candidate list for `order[depth]` under `current`: the **shortest**
/// posting list among the bound columns, else the full (sorted) live-id
/// list. Choosing the shortest posting instead of the first bound column is
/// free (column selection reads posting lengths without issuing probes) and
/// collapses candidate lists on atoms where a selective variable coexists
/// with a low-selectivity one. Every posting shares the relation's global
/// tuple order, so the surviving candidates are enumerated in the same
/// order whichever column is probed — the assignment stream is unchanged.
/// The final `bool` reports whether an index probe was issued (false on
/// the full-scan fallback), so callers can charge probe hits to their span.
fn candidates_for<'d>(
    q: &ConjunctiveQuery,
    db: &'d Database,
    order: &[usize],
    depth: usize,
    current: &Assignment,
) -> (&'d Relation, &'d [TupleId], bool) {
    let atom = &q.atoms()[order[depth]];
    let rel = db.relation(atom.rel);
    let mut best: Option<(usize, usize, Value)> = None;
    for (col, term) in atom.terms.iter().enumerate() {
        if let Some(v) = current.ground_term(term) {
            let len = rel.posting_len(col, &v);
            if best.as_ref().is_none_or(|(shortest, _, _)| len < *shortest) {
                best = Some((len, col, v));
            }
        }
    }
    match best {
        Some((_, col, v)) => (rel, rel.probe(col, &v), true),
        None => (rel, rel.sorted_ids(), false),
    }
}

struct Search<'a> {
    q: &'a ConjunctiveQuery,
    db: &'a Database,
    order: &'a [usize],
    opts: EvalOptions,
    early_exit: bool,
    out: Vec<Assignment>,
    truncated: bool,
    /// Candidate tuples examined across the whole search; flushed to the
    /// `eval.assignments_tried` counter by the public entry points.
    tried: u64,
    /// Index probes issued across the whole search; recorded as a
    /// `probes=` span field so the phase-attribution report can show where
    /// probe work happens.
    probes: u64,
    /// Present only on parallel branches with a finite `max_assignments`.
    budget: Option<Budget<'a>>,
}

impl<'a> Search<'a> {
    fn new(
        q: &'a ConjunctiveQuery,
        db: &'a Database,
        order: &'a [usize],
        opts: EvalOptions,
        early_exit: bool,
        budget: Option<Budget<'a>>,
    ) -> Self {
        Search {
            q,
            db,
            order,
            opts,
            early_exit,
            out: Vec::new(),
            truncated: false,
            tried: 0,
            probes: 0,
            budget,
        }
    }

    /// Greedy atom order by estimated candidate cardinality: at each step
    /// pick the atom whose candidate list is expected to be smallest. The
    /// estimate uses the posting lists the relations already materialize —
    /// the *exact* posting length when a term's value is known at plan time
    /// (constants and seed bindings, read via `posting_len` so planning
    /// issues no counted probes), and `len/distinct` for variables bound by
    /// an earlier plan step (value unknown until execution). Ties break by
    /// more bound terms, then atom index, so the order is deterministic and
    /// independent of thread count.
    fn plan(q: &ConjunctiveQuery, db: &Database, seed: &Assignment) -> Vec<usize> {
        let n = q.atoms().len();
        let mut bound_vars: std::collections::BTreeSet<qoco_query::Var> =
            seed.iter().map(|(v, _)| v.clone()).collect();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let best = remaining
                .iter()
                .copied()
                .min_by_key(|&i| {
                    let a = &q.atoms()[i];
                    let rel = db.relation(a.rel);
                    let mut estimate = rel.len();
                    let mut bound = 0usize;
                    for (col, term) in a.terms.iter().enumerate() {
                        match term {
                            Term::Const(c) => {
                                bound += 1;
                                estimate = estimate.min(rel.posting_len(col, c));
                            }
                            Term::Var(v) => {
                                if let Some(value) = seed.get(v) {
                                    bound += 1;
                                    estimate = estimate.min(rel.posting_len(col, value));
                                } else if bound_vars.contains(v) {
                                    bound += 1;
                                    let distinct = rel.distinct_in_column(col).max(1);
                                    estimate = estimate.min(rel.len().div_ceil(distinct));
                                }
                            }
                        }
                    }
                    // minimize (estimate, -bound, i)
                    (estimate, Reverse(bound), i)
                })
                .expect("remaining is non-empty");
            order.push(best);
            for v in q.atoms()[best].vars() {
                bound_vars.insert(v);
            }
            remaining.retain(|&i| i != best);
        }
        order
    }

    fn should_stop(&self) -> bool {
        self.truncated || (self.early_exit && !self.out.is_empty())
    }

    fn descend(&mut self, depth: usize, current: Assignment) {
        if self.should_stop() {
            return;
        }
        if depth == self.order.len() {
            self.finalize(current);
            return;
        }
        let (rel, cands, probed) = candidates_for(self.q, self.db, self.order, depth, &current);
        self.probes += probed as u64;
        for &tid in cands {
            if self.should_stop() {
                return;
            }
            self.expand(depth, rel, &current, tid);
        }
    }

    /// Try to extend `current` with the tuple `tid` of atom `order[depth]`,
    /// descending on success.
    fn expand(&mut self, depth: usize, rel: &Relation, current: &Assignment, tid: TupleId) {
        self.tried += 1;
        let atom = &self.q.atoms()[self.order[depth]];
        let tuple = rel.tuple(tid);
        // reject on constants and already-bound variables before paying for
        // an assignment clone — on selective probes most candidates die here
        for (term, value) in atom.terms.iter().zip(tuple.values()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return;
                    }
                }
                Term::Var(v) => {
                    if current.get(v).is_some_and(|bound| bound != value) {
                        return;
                    }
                }
            }
        }
        let mut next = current.clone();
        for (term, value) in atom.terms.iter().zip(tuple.values()) {
            if let Term::Var(v) = term {
                if !next.bind(v.clone(), value.clone()) {
                    // a repeated fresh variable can still clash here
                    return;
                }
            }
        }
        // prune on any inequality already violated
        for e in self.q.inequalities() {
            if next.check_inequality(e) == Some(false) {
                return;
            }
        }
        self.descend(depth + 1, next);
    }

    /// All atoms matched: check the (now ground) inequalities and retain
    /// the assignment, subject to the truncation budget.
    fn finalize(&mut self, current: Assignment) {
        let ok = self
            .q
            .inequalities()
            .iter()
            .all(|e| current.check_inequality(e) == Some(true));
        if !ok {
            return;
        }
        let exhausted = match &self.budget {
            Some(b) => b.preceding() >= b.limit,
            None => self.out.len() >= self.opts.max_assignments,
        };
        if exhausted {
            self.truncated = true;
            return;
        }
        self.out.push(current);
        if let Some(b) = &self.budget {
            b.record();
        }
    }
}

/// Semi-join pre-filter for a full-scan root atom: drop candidates whose
/// value for a join variable has an **empty** posting list in a partner
/// atom — no assignment can extend such a candidate, so pruning is sound
/// and the surviving enumeration order is untouched. One partner (the
/// smallest relation mentioning the variable) is checked per root
/// variable, one hash lookup each. A deterministic prefix sample bounds
/// the overhead: when almost nothing in the sample is prunable the filter
/// abandons and the scan proceeds unfiltered. Everything here is a pure
/// function of the database, so sequential and parallel runs see the same
/// candidate list.
fn semijoin_prefilter(
    q: &ConjunctiveQuery,
    db: &Database,
    order: &[usize],
    seed: &Assignment,
    rel: &Relation,
    cands: &[TupleId],
) -> Option<Vec<TupleId>> {
    if cands.len() < SEMIJOIN_MIN_CANDIDATES {
        return None;
    }
    let root_idx = order[0];
    let root = &q.atoms()[root_idx];
    // (root column, partner relation, partner column) per join variable
    let mut checks: Vec<(usize, &Relation, usize)> = Vec::new();
    for (col, term) in root.terms.iter().enumerate() {
        let Term::Var(v) = term else { continue };
        if seed.get(v).is_some() {
            continue; // ground under the seed: the root scan is already odd
        }
        // consider each variable once, at its first column
        if root.terms[..col]
            .iter()
            .any(|t| matches!(t, Term::Var(u) if u == v))
        {
            continue;
        }
        let mut partner: Option<(usize, &Relation, usize)> = None;
        for (j, atom) in q.atoms().iter().enumerate() {
            if j == root_idx {
                continue;
            }
            for (pcol, pterm) in atom.terms.iter().enumerate() {
                if matches!(pterm, Term::Var(u) if u == v) {
                    let prel = db.relation(atom.rel);
                    if partner.is_none_or(|(plen, _, _)| prel.len() < plen) {
                        partner = Some((prel.len(), prel, pcol));
                    }
                    break;
                }
            }
        }
        if let Some((_, prel, pcol)) = partner {
            checks.push((col, prel, pcol));
        }
    }
    if checks.is_empty() {
        return None;
    }
    let keep = |tid: TupleId| {
        let t = rel.tuple(tid);
        checks
            .iter()
            .all(|(col, prel, pcol)| prel.posting_len(*pcol, &t.values()[*col]) > 0)
    };
    let sample = &cands[..cands.len().min(SEMIJOIN_SAMPLE)];
    let sample_pruned = sample.iter().filter(|&&tid| !keep(tid)).count();
    if sample_pruned * 8 < sample.len() {
        return None;
    }
    let filtered: Vec<TupleId> = cands.iter().copied().filter(|&tid| keep(tid)).collect();
    qoco_telemetry::counter_add(
        "eval.semijoin_pruned",
        (cands.len() - filtered.len()) as u64,
    );
    Some(filtered)
}

/// Run the search over `seed`, fanning the top-level candidate loop out
/// across threads when worthwhile. Returns `(assignments, truncated,
/// tried, probes)` with assignments in sequential discovery order.
fn run_search(
    q: &ConjunctiveQuery,
    db: &Database,
    order: &[usize],
    seed: &Assignment,
    opts: EvalOptions,
    early_exit: bool,
) -> (Vec<Assignment>, bool, u64, u64) {
    let threads = opts
        .threads
        .unwrap_or_else(rayon::current_num_threads)
        .max(1);
    let (rel, cands, root_probed) = candidates_for(q, db, order, 0, seed);
    // A probed root is already selective, and an early-exit search wants
    // its first witness, not a pass over every candidate — pre-filter only
    // exhaustive scans.
    let filtered = if !root_probed && !early_exit {
        semijoin_prefilter(q, db, order, seed, rel, cands)
    } else {
        None
    };
    let cands: &[TupleId] = filtered.as_deref().unwrap_or(cands);
    if threads > 1 && !early_exit && cands.len() >= PAR_MIN_CANDIDATES.max(threads) {
        let (out, truncated, tried, probes) =
            run_parallel(q, db, order, seed, opts, threads, rel, cands);
        return (out, truncated, tried, probes + root_probed as u64);
    }
    let mut s = Search::new(q, db, order, opts, early_exit, None);
    s.probes += root_probed as u64;
    for &tid in cands {
        if s.should_stop() {
            break;
        }
        s.expand(0, rel, seed, tid);
    }
    (s.out, s.truncated, s.tried, s.probes)
}

#[allow(clippy::too_many_arguments)]
fn run_parallel(
    q: &ConjunctiveQuery,
    db: &Database,
    order: &[usize],
    seed: &Assignment,
    opts: EvalOptions,
    threads: usize,
    rel: &Relation,
    cands: &[TupleId],
) -> (Vec<Assignment>, bool, u64, u64) {
    // Warm every index the workers could touch so they don't race to
    // build (and then discard duplicate copies of) the same OnceLock cells.
    for atom in q.atoms() {
        db.relation(atom.rel).ensure_indexes();
    }
    let chunk_size = cands.len().div_ceil(threads);
    let n_chunks = cands.len().div_ceil(chunk_size);
    let found: Vec<AtomicUsize> = (0..n_chunks).map(|_| AtomicUsize::new(0)).collect();
    let limited = opts.max_assignments != usize::MAX;
    // Chunk spans land on the worker threads' own trace tracks; the
    // explicit parent keeps them linked to the evaluation span opened on
    // this (coordinating) thread.
    let parent_span = qoco_telemetry::current_span_id();

    let results: Vec<(Vec<Assignment>, bool, u64, u64)> = cands
        .par_chunks(chunk_size)
        .enumerate()
        .map(|(ci, chunk)| {
            let mut chunk_span = qoco_telemetry::span_child_of("eval.par_chunk", parent_span);
            chunk_span.record("chunk", ci);
            chunk_span.record("candidates", chunk.len());
            let budget = limited.then(|| Budget {
                chunk: ci,
                found: &found,
                limit: opts.max_assignments,
            });
            let mut s = Search::new(q, db, order, opts, false, budget);
            for &tid in chunk {
                if s.should_stop() {
                    break;
                }
                s.expand(0, rel, seed, tid);
            }
            chunk_span.record("valid", s.out.len());
            chunk_span.record("probes", s.probes);
            (s.out, s.truncated, s.tried, s.probes)
        })
        .collect();

    let mut merged = Vec::new();
    let mut truncated = false;
    let mut tried = 0u64;
    let mut probes = 0u64;
    for (out, branch_truncated, branch_tried, branch_probes) in results {
        merged.extend(out);
        truncated |= branch_truncated;
        tried += branch_tried;
        probes += branch_probes;
    }
    if merged.len() > opts.max_assignments {
        merged.truncate(opts.max_assignments);
        truncated = true;
    }
    (merged, truncated, tried, probes)
}

/// Enumerate all valid assignments of `q` over `db` extending `seed`
/// (pass [`Assignment::new`] for `A(Q, D)` itself).
pub fn all_assignments(
    q: &ConjunctiveQuery,
    db: &Database,
    seed: &Assignment,
    opts: EvalOptions,
) -> EvalResult {
    let span = qoco_telemetry::span("eval.assignments").field("atoms", q.atoms().len());
    let order = Search::plan(q, db, seed);
    let (mut assignments, truncated, tried, probes) = run_search(q, db, &order, seed, opts, false);
    qoco_telemetry::counter_add("eval.assignments_tried", tried);
    assignments.sort();
    assignments.dedup();
    span.field("valid", assignments.len())
        .field("probes", probes)
        .finish();
    EvalResult {
        assignments,
        truncated,
    }
}

/// Evaluate `q` over `db`: all valid assignments, default options.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> EvalResult {
    all_assignments(q, db, &Assignment::new(), EvalOptions::default())
}

/// The answer set `Q(D)`, sorted and deduplicated.
pub fn answer_set(q: &ConjunctiveQuery, db: &Database) -> Vec<Tuple> {
    evaluate(q, db).answers(q)
}

/// `A(t, Q, D)`: the valid assignments yielding answer `t`. Empty if `t` is
/// not an answer (including arity mismatches).
pub fn assignments_for_answer(q: &ConjunctiveQuery, db: &Database, t: &Tuple) -> Vec<Assignment> {
    let Some(seed) = Assignment::from_answer(q, t) else {
        return Vec::new();
    };
    all_assignments(q, db, &seed, EvalOptions::default()).assignments
}

/// Is the partial assignment `seed` *satisfiable* w.r.t. `q` and `db`
/// (extends to a valid total assignment, paper Section 2)? Short-circuits
/// on the first witness. Always sequential: the short-circuit usually wins
/// after a handful of probes, and this runs inside tight per-answer loops
/// where a thread fan-out would cost more than the whole search.
pub fn is_satisfiable(q: &ConjunctiveQuery, db: &Database, seed: &Assignment) -> bool {
    let span = qoco_telemetry::span("eval.satisfiable");
    let order = Search::plan(q, db, seed);
    let mut s = Search::new(
        q,
        db,
        &order,
        EvalOptions::default(),
        /* early_exit */ true,
        None,
    );
    s.descend(0, seed.clone());
    qoco_telemetry::counter_add("eval.assignments_tried", s.tried);
    span.field("probes", s.probes)
        .field("satisfiable", !s.out.is_empty())
        .finish();
    !s.out.is_empty()
}

/// Render the evaluation plan for `q` over `db`: the greedy atom order and,
/// per step, which terms are bound when the step runs. Useful for
/// understanding why the engine probes in a particular order.
pub fn explain(q: &ConjunctiveQuery, db: &Database) -> String {
    let order = Search::plan(q, db, &Assignment::new());
    let mut bound: std::collections::BTreeSet<qoco_query::Var> = Default::default();
    let mut out = String::new();
    out.push_str(&format!(
        "plan for {} ({} atoms):\n",
        q.name(),
        q.atoms().len()
    ));
    for (step, &idx) in order.iter().enumerate() {
        let atom = &q.atoms()[idx];
        let rel_name = db.schema().rel_name(atom.rel);
        let bound_terms: Vec<String> = atom
            .terms
            .iter()
            .enumerate()
            .filter_map(|(col, term)| match term {
                Term::Const(c) => Some(format!("col{col}={c}")),
                Term::Var(v) if bound.contains(v) => Some(format!("col{col}=?{v}")),
                Term::Var(_) => None,
            })
            .collect();
        let access = if bound_terms.is_empty() {
            format!("scan ({} tuples)", db.relation(atom.rel).len())
        } else {
            format!("probe [{}]", bound_terms.join(", "))
        };
        out.push_str(&format!("  {}. {} — {}\n", step + 1, rel_name, access));
        for v in atom.vars() {
            bound.insert(v);
        }
    }
    if !q.inequalities().is_empty() {
        out.push_str(&format!(
            "  filter: {} inequalit(ies)\n",
            q.inequalities().len()
        ));
    }
    out
}

/// Group all valid assignments by the answer they produce.
pub fn assignments_by_answer(
    q: &ConjunctiveQuery,
    db: &Database,
) -> HashMap<Tuple, Vec<Assignment>> {
    let res = evaluate(q, db);
    let mut map: HashMap<Tuple, Vec<Assignment>> = HashMap::new();
    for a in res.assignments {
        let head = a.ground_head(q).expect("valid assignments are total");
        map.entry(head).or_default().push(a);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Schema};
    use qoco_query::parse_query;
    use std::sync::Arc;

    /// Build the Figure 1 World Cup database (the dirty instance `D`).
    fn world_cup() -> (Arc<Schema>, Database) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        let games = [
            ("13.07.14", "GER", "ARG", "Final", "1:0"),
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("09.07.06", "ITA", "FRA", "Final", "5:3"),
            ("30.06.02", "BRA", "GER", "Final", "2:0"),
            ("12.07.98", "ESP", "NED", "Final", "4:2"),
            ("17.07.94", "ESP", "NED", "Final", "3:1"),
            ("08.07.90", "GER", "ARG", "Final", "1:0"),
            ("11.07.82", "ITA", "GER", "Final", "4:1"),
            ("25.06.78", "ESP", "NED", "Final", "1:0"),
        ];
        for (d, w, r, s, u) in games {
            db.insert_named("Games", tup![d, w, r, s, u]).unwrap();
        }
        // Figure 1 Teams: BRA marked EU and NED marked SA are the planted
        // errors; ITA is missing.
        for (c, k) in [("GER", "EU"), ("ESP", "EU"), ("BRA", "EU"), ("NED", "SA")] {
            db.insert_named("Teams", tup![c, k]).unwrap();
        }
        for (n, t, y, p) in [
            ("Mario Götze", "GER", 1992, "GER"),
            ("Andrea Pirlo", "ITA", 1979, "ITA"),
            ("Francesco Totti", "ITA", 1976, "ITA"),
        ] {
            db.insert_named("Players", tup![n, t, y, p]).unwrap();
        }
        for (n, d) in [
            ("Mario Götze", "13.07.14"),
            ("Andrea Pirlo", "09.06.06"),
            ("Francesco Totti", "09.06.06"),
        ] {
            db.insert_named("Goals", tup![n, d]).unwrap();
        }
        (schema, db)
    }

    fn q1(s: &Arc<Schema>) -> ConjunctiveQuery {
        parse_query(
            s,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap()
    }

    /// A larger database whose top-level candidate list clears
    /// `PAR_MIN_CANDIDATES`, so multi-thread options actually take the
    /// parallel path.
    fn wide_db() -> (Arc<Schema>, Database, ConjunctiveQuery) {
        let s = Schema::builder()
            .relation("A", &["a", "g"])
            .relation("B", &["b", "g"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        for i in 0..60i64 {
            db.insert_named("A", tup![i, i % 3]).unwrap();
            db.insert_named("B", tup![i, i % 3]).unwrap();
        }
        let q = parse_query(&s, "(x, y) :- A(x, g), B(y, g)").unwrap();
        (s, db, q)
    }

    fn with_threads(n: usize) -> EvalOptions {
        EvalOptions {
            threads: Some(n),
            ..EvalOptions::default()
        }
    }

    #[test]
    fn q1_on_figure_1_returns_ger_and_esp() {
        let (s, db) = world_cup();
        let q = q1(&s);
        let answers = answer_set(&q, &db);
        assert_eq!(answers, vec![tup!["ESP"], tup!["GER"]]);
    }

    #[test]
    fn ger_has_two_assignments_as_in_example_2_2() {
        let (s, db) = world_cup();
        let q = q1(&s);
        let a = assignments_for_answer(&q, &db, &tup!["GER"]);
        // α1 and α2: the two orderings of 13.07.14 / 08.07.90.
        assert_eq!(a.len(), 2);
        for asg in &a {
            assert_eq!(
                asg.get(&qoco_query::Var::new("x")),
                Some(&qoco_data::Value::text("GER"))
            );
        }
    }

    #[test]
    fn esp_has_many_assignments() {
        let (s, db) = world_cup();
        let q = q1(&s);
        // ESP won 4 finals in D → ordered pairs of distinct dates: 4·3 = 12.
        let a = assignments_for_answer(&q, &db, &tup!["ESP"]);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn inequality_excludes_single_win_teams() {
        let (s, db) = world_cup();
        let q = q1(&s);
        // BRA is (wrongly) in Teams as EU but won only once → the d1 != d2
        // inequality must exclude it.
        let answers = answer_set(&q, &db);
        assert!(!answers.contains(&tup!["BRA"]));
    }

    #[test]
    fn non_satisfiable_partial_assignment_example_2_2() {
        let (s, db) = world_cup();
        let q = q1(&s);
        // β = {x ↦ ITA, y ↦ FRA} is non-satisfiable w.r.t. D (ITA missing
        // from Teams).
        let beta = Assignment::from_pairs([
            (qoco_query::Var::new("x"), qoco_data::Value::text("ITA")),
            (qoco_query::Var::new("y"), qoco_data::Value::text("FRA")),
        ]);
        assert!(!is_satisfiable(&q, &db, &beta));
        // but {x ↦ GER} is satisfiable
        let ger =
            Assignment::from_pairs([(qoco_query::Var::new("x"), qoco_data::Value::text("GER"))]);
        assert!(is_satisfiable(&q, &db, &ger));
    }

    #[test]
    fn constants_filter_candidates() {
        let (s, db) = world_cup();
        let q = parse_query(&s, r#"(x) :- Games(d, x, y, "Semi", u)"#).unwrap();
        assert!(answer_set(&q, &db).is_empty());
    }

    #[test]
    fn repeated_variable_in_atom_enforces_equality() {
        let s = Schema::builder()
            .relation("E", &["a", "b"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("E", tup!["x", "x"]).unwrap();
        db.insert_named("E", tup!["x", "y"]).unwrap();
        let q = parse_query(&s, "(v) :- E(v, v)").unwrap();
        assert_eq!(answer_set(&q, &db), vec![tup!["x"]]);
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let s = Schema::builder()
            .relation("A", &["a"])
            .relation("B", &["b"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        for v in ["1", "2"] {
            db.insert_named("A", tup![v]).unwrap();
            db.insert_named("B", tup![v]).unwrap();
        }
        let q = parse_query(&s, "(x, y) :- A(x), B(y)").unwrap();
        assert_eq!(answer_set(&q, &db).len(), 4);
    }

    #[test]
    fn empty_relation_gives_empty_result() {
        let s = Schema::builder().relation("A", &["a"]).build().unwrap();
        let db = Database::empty(s.clone());
        let q = parse_query(&s, "(x) :- A(x)").unwrap();
        assert!(answer_set(&q, &db).is_empty());
        assert!(!is_satisfiable(&q, &db, &Assignment::new()));
    }

    #[test]
    fn max_assignments_truncates() {
        let s = Schema::builder()
            .relation("A", &["a"])
            .relation("B", &["b"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        for i in 0..10i64 {
            db.insert_named("A", tup![i]).unwrap();
            db.insert_named("B", tup![i]).unwrap();
        }
        let q = parse_query(&s, "(x, y) :- A(x), B(y)").unwrap();
        let res = all_assignments(
            &q,
            &db,
            &Assignment::new(),
            EvalOptions {
                max_assignments: 5,
                ..EvalOptions::default()
            },
        );
        assert!(res.truncated);
        assert_eq!(res.assignments.len(), 5);
        let full = evaluate(&q, &db);
        assert!(!full.truncated);
        assert_eq!(full.assignments.len(), 100);
    }

    #[test]
    fn truncation_is_identical_across_thread_counts() {
        let (_s, db, q) = wide_db();
        // 60 candidates at the top level with 3-way fan-in: plenty of valid
        // assignments, so every max hits the budget.
        for max in [0usize, 1, 7, 50, 10_000] {
            let base = all_assignments(
                &q,
                &db,
                &Assignment::new(),
                EvalOptions {
                    max_assignments: max,
                    threads: Some(1),
                },
            );
            for threads in [2usize, 4, 8] {
                let par = all_assignments(
                    &q,
                    &db,
                    &Assignment::new(),
                    EvalOptions {
                        max_assignments: max,
                        threads: Some(threads),
                    },
                );
                assert_eq!(par, base, "max={max} threads={threads}");
            }
        }
    }

    #[test]
    fn exact_capacity_sets_no_truncated_flag_in_parallel() {
        let (_s, db, q) = wide_db();
        let total = evaluate(&q, &db).assignments.len();
        // budget exactly equal to the result size must not report truncation
        for threads in [1usize, 4] {
            let res = all_assignments(
                &q,
                &db,
                &Assignment::new(),
                EvalOptions {
                    max_assignments: total,
                    threads: Some(threads),
                },
            );
            assert!(!res.truncated, "threads={threads}");
            assert_eq!(res.assignments.len(), total);
        }
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let (_s, db, q) = wide_db();
        let seq = all_assignments(&q, &db, &Assignment::new(), with_threads(1));
        for threads in [2usize, 3, 8, 64] {
            let par = all_assignments(&q, &db, &Assignment::new(), with_threads(threads));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn early_exit_stops_at_first_witness() {
        let s = Schema::builder().relation("A", &["a"]).build().unwrap();
        let mut db = Database::empty(s.clone());
        for i in 0..100i64 {
            db.insert_named("A", tup![i]).unwrap();
        }
        let q = parse_query(&s, "(x) :- A(x)").unwrap();
        let order = Search::plan(&q, &db, &Assignment::new());
        let mut s = Search::new(
            &q,
            &db,
            &order,
            EvalOptions::default(),
            /* early_exit */ true,
            None,
        );
        s.descend(0, Assignment::new());
        assert_eq!(s.out.len(), 1, "early exit keeps exactly one witness");
        assert!(
            s.tried < 100,
            "early exit must not scan all candidates (tried {})",
            s.tried
        );
    }

    #[test]
    fn inequality_with_constant() {
        let s = Schema::builder()
            .relation("T", &["c", "k"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("T", tup!["GER", "EU"]).unwrap();
        db.insert_named("T", tup!["BRA", "SA"]).unwrap();
        let q = parse_query(&s, r#"(x) :- T(x, k), k != "EU""#).unwrap();
        assert_eq!(answer_set(&q, &db), vec![tup!["BRA"]]);
    }

    #[test]
    fn assignments_by_answer_groups() {
        let (s, db) = world_cup();
        let q = q1(&s);
        let map = assignments_by_answer(&q, &db);
        assert_eq!(map.len(), 2);
        assert_eq!(map[&tup!["GER"]].len(), 2);
        assert_eq!(map[&tup!["ESP"]].len(), 12);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (s, db) = world_cup();
        let q = q1(&s);
        let r1 = evaluate(&q, &db).assignments;
        let r2 = evaluate(&q, &db).assignments;
        assert_eq!(r1, r2);
    }

    #[test]
    fn explain_orders_selective_atoms_first() {
        let (s, db) = world_cup();
        let q = q1(&s);
        let plan = explain(&q, &db);
        // Teams (48 rows max, one constant) or a Games atom with the Final
        // constant goes first; every later step shows a probe
        assert!(plan.contains("plan for Q1"), "{plan}");
        assert!(plan.contains("probe ["), "{plan}");
        assert!(plan.contains("filter: 1 inequalit"), "{plan}");
        // the first step has a constant binding
        let first_line = plan.lines().nth(1).unwrap();
        assert!(first_line.contains("col"), "{first_line}");
    }

    #[test]
    fn explain_reports_scans_for_unconstrained_atoms() {
        let s = Schema::builder().relation("A", &["a"]).build().unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("A", tup!["x"]).unwrap();
        let q = parse_query(&s, "(v) :- A(v)").unwrap();
        let plan = explain(&q, &db);
        assert!(plan.contains("scan (1 tuples)"), "{plan}");
    }

    #[test]
    fn seed_conflicting_with_head_constant_yields_nothing() {
        let (s, db) = world_cup();
        let q = q1(&s);
        assert!(assignments_for_answer(&q, &db, &tup!["GER", "extra"]).is_empty());
    }

    proptest::proptest! {
        /// On random databases, the full `EvalResult` — assignment list,
        /// order, and truncation flag — is identical whether evaluation
        /// runs sequentially or across any number of threads, with and
        /// without a `max_assignments` budget.
        #[test]
        fn parallel_eval_is_deterministic_on_random_databases(
            a_rows in proptest::collection::vec((0i64..8, 0i64..5), 0..60),
            b_rows in proptest::collection::vec((0i64..8, 0i64..5), 0..60),
            max in 1usize..30,
        ) {
            let s = Schema::builder()
                .relation("A", &["a", "g"])
                .relation("B", &["b", "g"])
                .build()
                .unwrap();
            let mut db = Database::empty(s.clone());
            for (v, g) in a_rows {
                db.insert_named("A", tup![v, g]).unwrap();
            }
            for (v, g) in b_rows {
                db.insert_named("B", tup![v, g]).unwrap();
            }
            let q = parse_query(&s, "(x, y) :- A(x, g), B(y, g), x != y").unwrap();
            for limit in [usize::MAX, max] {
                let reference = all_assignments(
                    &q,
                    &db,
                    &Assignment::new(),
                    EvalOptions { max_assignments: limit, threads: Some(1) },
                );
                for threads in [2usize, 8] {
                    let parallel = all_assignments(
                        &q,
                        &db,
                        &Assignment::new(),
                        EvalOptions { max_assignments: limit, threads: Some(threads) },
                    );
                    proptest::prop_assert_eq!(
                        &parallel,
                        &reference,
                        "threads={} limit={}",
                        threads,
                        limit
                    );
                }
            }
        }
    }
}
