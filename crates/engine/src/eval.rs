//! Query evaluation: enumerate the valid assignments `A(Q, D)`.
//!
//! The engine runs a backtracking *generic join*: atoms are ordered greedily
//! (most-bound-variables first, ties broken by smaller relation), candidate
//! tuples are fetched through the per-column hash indexes of
//! [`qoco_data::Relation`], and inequalities are checked as soon as both
//! sides are ground. Enumeration is exhaustive because the deletion
//! algorithm needs *every* witness of a wrong answer, not just one.
//!
//! Candidate lists are sorted, so evaluation order — and everything
//! downstream: witness order, crowd-question order, figures — is
//! deterministic.

use std::collections::HashMap;

use qoco_data::{Database, Tuple, Value};
use qoco_query::{ConjunctiveQuery, Term};

use crate::assignment::Assignment;

/// Options controlling evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Stop after this many valid assignments (safety valve for pathological
    /// joins; `usize::MAX` = unlimited).
    pub max_assignments: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_assignments: usize::MAX,
        }
    }
}

/// The result of evaluating a query.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// All valid assignments, in deterministic order.
    pub assignments: Vec<Assignment>,
    /// True if enumeration stopped at `max_assignments`.
    pub truncated: bool,
}

impl EvalResult {
    /// The distinct answers `Q(D) = ∪ α(head(Q))`, sorted.
    pub fn answers(&self, q: &ConjunctiveQuery) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .assignments
            .iter()
            .map(|a| a.ground_head(q).expect("valid assignments are total"))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

struct Search<'a> {
    q: &'a ConjunctiveQuery,
    db: &'a mut Database,
    order: Vec<usize>,
    opts: EvalOptions,
    early_exit: bool,
    out: Vec<Assignment>,
    truncated: bool,
    /// Candidate tuples examined across the whole search; flushed to the
    /// `eval.assignments_tried` counter by the public entry points.
    tried: u64,
}

impl<'a> Search<'a> {
    /// Greedy atom order: at each step pick the atom maximizing the number
    /// of bound terms (constants + already-bound variables), breaking ties
    /// by smaller relation cardinality, then by index for determinism.
    fn plan(q: &ConjunctiveQuery, db: &Database, seed: &Assignment) -> Vec<usize> {
        let n = q.atoms().len();
        let mut bound_vars: std::collections::BTreeSet<qoco_query::Var> =
            seed.iter().map(|(v, _)| v.clone()).collect();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let best = remaining
                .iter()
                .copied()
                .min_by_key(|&i| {
                    let a = &q.atoms()[i];
                    let bound = a
                        .terms
                        .iter()
                        .filter(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound_vars.contains(v),
                        })
                        .count();
                    let size = db.relation(a.rel).len();
                    // minimize (-bound, size, i)
                    (usize::MAX - bound, size, i)
                })
                .expect("remaining is non-empty");
            order.push(best);
            for v in q.atoms()[best].vars() {
                bound_vars.insert(v);
            }
            remaining.retain(|&i| i != best);
        }
        order
    }

    fn run(&mut self, seed: Assignment) {
        self.descend(0, seed);
    }

    fn descend(&mut self, depth: usize, current: Assignment) {
        if self.truncated || (self.early_exit && !self.out.is_empty()) {
            return;
        }
        if depth == self.order.len() {
            // all atoms matched; all inequalities must be ground and true
            let ok = self
                .q
                .inequalities()
                .iter()
                .all(|e| current.check_inequality(e) == Some(true));
            if ok {
                if self.out.len() >= self.opts.max_assignments {
                    self.truncated = true;
                } else {
                    self.out.push(current);
                }
            }
            return;
        }
        let atom = &self.q.atoms()[self.order[depth]];
        // choose the probe column: prefer a bound column with an index
        let mut probe_col: Option<(usize, Value)> = None;
        for (col, term) in atom.terms.iter().enumerate() {
            if let Some(v) = current.ground_term(term) {
                probe_col = Some((col, v));
                break;
            }
        }
        let mut candidates: Vec<Tuple> = match &probe_col {
            Some((col, v)) => self.db.relation_mut(atom.rel).probe(*col, v).to_vec(),
            None => self.db.relation(atom.rel).iter().cloned().collect(),
        };
        candidates.sort();
        'cand: for tuple in candidates {
            if self.truncated || (self.early_exit && !self.out.is_empty()) {
                return;
            }
            self.tried += 1;
            let mut next = current.clone();
            for (term, value) in atom.terms.iter().zip(tuple.values()) {
                match term {
                    Term::Const(c) => {
                        if c != value {
                            continue 'cand;
                        }
                    }
                    Term::Var(v) => {
                        if !next.bind(v.clone(), value.clone()) {
                            continue 'cand;
                        }
                    }
                }
            }
            // prune on any inequality already violated
            for e in self.q.inequalities() {
                if next.check_inequality(e) == Some(false) {
                    continue 'cand;
                }
            }
            self.descend(depth + 1, next);
        }
    }
}

/// Enumerate all valid assignments of `q` over `db` extending `seed`
/// (pass [`Assignment::new`] for `A(Q, D)` itself).
pub fn all_assignments(
    q: &ConjunctiveQuery,
    db: &mut Database,
    seed: &Assignment,
    opts: EvalOptions,
) -> EvalResult {
    let span = qoco_telemetry::span("eval.assignments").field("atoms", q.atoms().len());
    let order = Search::plan(q, db, seed);
    let mut s = Search {
        q,
        db,
        order,
        opts,
        early_exit: false,
        out: Vec::new(),
        truncated: false,
        tried: 0,
    };
    s.run(seed.clone());
    qoco_telemetry::counter_add("eval.assignments_tried", s.tried);
    let mut assignments = s.out;
    assignments.sort();
    assignments.dedup();
    span.field("valid", assignments.len()).finish();
    EvalResult {
        assignments,
        truncated: s.truncated,
    }
}

/// Evaluate `q` over `db`: all valid assignments, default options.
pub fn evaluate(q: &ConjunctiveQuery, db: &mut Database) -> EvalResult {
    all_assignments(q, db, &Assignment::new(), EvalOptions::default())
}

/// The answer set `Q(D)`, sorted and deduplicated.
pub fn answer_set(q: &ConjunctiveQuery, db: &mut Database) -> Vec<Tuple> {
    evaluate(q, db).answers(q)
}

/// `A(t, Q, D)`: the valid assignments yielding answer `t`. Empty if `t` is
/// not an answer (including arity mismatches).
pub fn assignments_for_answer(
    q: &ConjunctiveQuery,
    db: &mut Database,
    t: &Tuple,
) -> Vec<Assignment> {
    let Some(seed) = Assignment::from_answer(q, t) else {
        return Vec::new();
    };
    all_assignments(q, db, &seed, EvalOptions::default()).assignments
}

/// Is the partial assignment `seed` *satisfiable* w.r.t. `q` and `db`
/// (extends to a valid total assignment, paper Section 2)? Short-circuits
/// on the first witness.
pub fn is_satisfiable(q: &ConjunctiveQuery, db: &mut Database, seed: &Assignment) -> bool {
    let order = Search::plan(q, db, seed);
    let mut s = Search {
        q,
        db,
        order,
        opts: EvalOptions::default(),
        early_exit: true,
        out: Vec::new(),
        truncated: false,
        tried: 0,
    };
    s.run(seed.clone());
    qoco_telemetry::counter_add("eval.assignments_tried", s.tried);
    !s.out.is_empty()
}

/// Render the evaluation plan for `q` over `db`: the greedy atom order and,
/// per step, which terms are bound when the step runs. Useful for
/// understanding why the engine probes in a particular order.
pub fn explain(q: &ConjunctiveQuery, db: &Database) -> String {
    let order = Search::plan(q, db, &Assignment::new());
    let mut bound: std::collections::BTreeSet<qoco_query::Var> = Default::default();
    let mut out = String::new();
    out.push_str(&format!(
        "plan for {} ({} atoms):\n",
        q.name(),
        q.atoms().len()
    ));
    for (step, &idx) in order.iter().enumerate() {
        let atom = &q.atoms()[idx];
        let rel_name = db.schema().rel_name(atom.rel);
        let bound_terms: Vec<String> = atom
            .terms
            .iter()
            .enumerate()
            .filter_map(|(col, term)| match term {
                Term::Const(c) => Some(format!("col{col}={c}")),
                Term::Var(v) if bound.contains(v) => Some(format!("col{col}=?{v}")),
                Term::Var(_) => None,
            })
            .collect();
        let access = if bound_terms.is_empty() {
            format!("scan ({} tuples)", db.relation(atom.rel).len())
        } else {
            format!("probe [{}]", bound_terms.join(", "))
        };
        out.push_str(&format!("  {}. {} — {}\n", step + 1, rel_name, access));
        for v in atom.vars() {
            bound.insert(v);
        }
    }
    if !q.inequalities().is_empty() {
        out.push_str(&format!(
            "  filter: {} inequalit(ies)\n",
            q.inequalities().len()
        ));
    }
    out
}

/// Group all valid assignments by the answer they produce.
pub fn assignments_by_answer(
    q: &ConjunctiveQuery,
    db: &mut Database,
) -> HashMap<Tuple, Vec<Assignment>> {
    let res = evaluate(q, db);
    let mut map: HashMap<Tuple, Vec<Assignment>> = HashMap::new();
    for a in res.assignments {
        let head = a.ground_head(q).expect("valid assignments are total");
        map.entry(head).or_default().push(a);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::{tup, Schema};
    use qoco_query::parse_query;
    use std::sync::Arc;

    /// Build the Figure 1 World Cup database (the dirty instance `D`).
    fn world_cup() -> (Arc<Schema>, Database) {
        let schema = Schema::builder()
            .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
            .relation("Teams", &["country", "continent"])
            .relation("Players", &["name", "team", "birth_year", "birth_place"])
            .relation("Goals", &["name", "date"])
            .build()
            .unwrap();
        let mut db = Database::empty(schema.clone());
        let games = [
            ("13.07.14", "GER", "ARG", "Final", "1:0"),
            ("11.07.10", "ESP", "NED", "Final", "1:0"),
            ("09.07.06", "ITA", "FRA", "Final", "5:3"),
            ("30.06.02", "BRA", "GER", "Final", "2:0"),
            ("12.07.98", "ESP", "NED", "Final", "4:2"),
            ("17.07.94", "ESP", "NED", "Final", "3:1"),
            ("08.07.90", "GER", "ARG", "Final", "1:0"),
            ("11.07.82", "ITA", "GER", "Final", "4:1"),
            ("25.06.78", "ESP", "NED", "Final", "1:0"),
        ];
        for (d, w, r, s, u) in games {
            db.insert_named("Games", tup![d, w, r, s, u]).unwrap();
        }
        // Figure 1 Teams: BRA marked EU and NED marked SA are the planted
        // errors; ITA is missing.
        for (c, k) in [("GER", "EU"), ("ESP", "EU"), ("BRA", "EU"), ("NED", "SA")] {
            db.insert_named("Teams", tup![c, k]).unwrap();
        }
        for (n, t, y, p) in [
            ("Mario Götze", "GER", 1992, "GER"),
            ("Andrea Pirlo", "ITA", 1979, "ITA"),
            ("Francesco Totti", "ITA", 1976, "ITA"),
        ] {
            db.insert_named("Players", tup![n, t, y, p]).unwrap();
        }
        for (n, d) in [
            ("Mario Götze", "13.07.14"),
            ("Andrea Pirlo", "09.06.06"),
            ("Francesco Totti", "09.06.06"),
        ] {
            db.insert_named("Goals", tup![n, d]).unwrap();
        }
        (schema, db)
    }

    fn q1(s: &Arc<Schema>) -> ConjunctiveQuery {
        parse_query(
            s,
            r#"Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        )
        .unwrap()
    }

    #[test]
    fn q1_on_figure_1_returns_ger_and_esp() {
        let (s, mut db) = world_cup();
        let q = q1(&s);
        let answers = answer_set(&q, &mut db);
        assert_eq!(answers, vec![tup!["ESP"], tup!["GER"]]);
    }

    #[test]
    fn ger_has_two_assignments_as_in_example_2_2() {
        let (s, mut db) = world_cup();
        let q = q1(&s);
        let a = assignments_for_answer(&q, &mut db, &tup!["GER"]);
        // α1 and α2: the two orderings of 13.07.14 / 08.07.90.
        assert_eq!(a.len(), 2);
        for asg in &a {
            assert_eq!(
                asg.get(&qoco_query::Var::new("x")),
                Some(&qoco_data::Value::text("GER"))
            );
        }
    }

    #[test]
    fn esp_has_many_assignments() {
        let (s, mut db) = world_cup();
        let q = q1(&s);
        // ESP won 4 finals in D → ordered pairs of distinct dates: 4·3 = 12.
        let a = assignments_for_answer(&q, &mut db, &tup!["ESP"]);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn inequality_excludes_single_win_teams() {
        let (s, mut db) = world_cup();
        let q = q1(&s);
        // BRA is (wrongly) in Teams as EU but won only once → the d1 != d2
        // inequality must exclude it.
        let answers = answer_set(&q, &mut db);
        assert!(!answers.contains(&tup!["BRA"]));
    }

    #[test]
    fn non_satisfiable_partial_assignment_example_2_2() {
        let (s, mut db) = world_cup();
        let q = q1(&s);
        // β = {x ↦ ITA, y ↦ FRA} is non-satisfiable w.r.t. D (ITA missing
        // from Teams).
        let beta = Assignment::from_pairs([
            (qoco_query::Var::new("x"), qoco_data::Value::text("ITA")),
            (qoco_query::Var::new("y"), qoco_data::Value::text("FRA")),
        ]);
        assert!(!is_satisfiable(&q, &mut db, &beta));
        // but {x ↦ GER} is satisfiable
        let ger =
            Assignment::from_pairs([(qoco_query::Var::new("x"), qoco_data::Value::text("GER"))]);
        assert!(is_satisfiable(&q, &mut db, &ger));
    }

    #[test]
    fn constants_filter_candidates() {
        let (s, mut db) = world_cup();
        let q = parse_query(&s, r#"(x) :- Games(d, x, y, "Semi", u)"#).unwrap();
        assert!(answer_set(&q, &mut db).is_empty());
    }

    #[test]
    fn repeated_variable_in_atom_enforces_equality() {
        let s = Schema::builder()
            .relation("E", &["a", "b"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("E", tup!["x", "x"]).unwrap();
        db.insert_named("E", tup!["x", "y"]).unwrap();
        let q = parse_query(&s, "(v) :- E(v, v)").unwrap();
        assert_eq!(answer_set(&q, &mut db), vec![tup!["x"]]);
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let s = Schema::builder()
            .relation("A", &["a"])
            .relation("B", &["b"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        for v in ["1", "2"] {
            db.insert_named("A", tup![v]).unwrap();
            db.insert_named("B", tup![v]).unwrap();
        }
        let q = parse_query(&s, "(x, y) :- A(x), B(y)").unwrap();
        assert_eq!(answer_set(&q, &mut db).len(), 4);
    }

    #[test]
    fn empty_relation_gives_empty_result() {
        let s = Schema::builder().relation("A", &["a"]).build().unwrap();
        let mut db = Database::empty(s.clone());
        let q = parse_query(&s, "(x) :- A(x)").unwrap();
        assert!(answer_set(&q, &mut db).is_empty());
        assert!(!is_satisfiable(&q, &mut db, &Assignment::new()));
    }

    #[test]
    fn max_assignments_truncates() {
        let s = Schema::builder()
            .relation("A", &["a"])
            .relation("B", &["b"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        for i in 0..10i64 {
            db.insert_named("A", tup![i]).unwrap();
            db.insert_named("B", tup![i]).unwrap();
        }
        let q = parse_query(&s, "(x, y) :- A(x), B(y)").unwrap();
        let res = all_assignments(
            &q,
            &mut db,
            &Assignment::new(),
            EvalOptions { max_assignments: 5 },
        );
        assert!(res.truncated);
        assert_eq!(res.assignments.len(), 5);
        let full = evaluate(&q, &mut db);
        assert!(!full.truncated);
        assert_eq!(full.assignments.len(), 100);
    }

    #[test]
    fn inequality_with_constant() {
        let s = Schema::builder()
            .relation("T", &["c", "k"])
            .build()
            .unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("T", tup!["GER", "EU"]).unwrap();
        db.insert_named("T", tup!["BRA", "SA"]).unwrap();
        let q = parse_query(&s, r#"(x) :- T(x, k), k != "EU""#).unwrap();
        assert_eq!(answer_set(&q, &mut db), vec![tup!["BRA"]]);
    }

    #[test]
    fn assignments_by_answer_groups() {
        let (s, mut db) = world_cup();
        let q = q1(&s);
        let map = assignments_by_answer(&q, &mut db);
        assert_eq!(map.len(), 2);
        assert_eq!(map[&tup!["GER"]].len(), 2);
        assert_eq!(map[&tup!["ESP"]].len(), 12);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (s, mut db) = world_cup();
        let q = q1(&s);
        let r1 = evaluate(&q, &mut db).assignments;
        let r2 = evaluate(&q, &mut db).assignments;
        assert_eq!(r1, r2);
    }

    #[test]
    fn explain_orders_selective_atoms_first() {
        let (s, db) = world_cup();
        let q = q1(&s);
        let plan = explain(&q, &db);
        // Teams (48 rows max, one constant) or a Games atom with the Final
        // constant goes first; every later step shows a probe
        assert!(plan.contains("plan for Q1"), "{plan}");
        assert!(plan.contains("probe ["), "{plan}");
        assert!(plan.contains("filter: 1 inequalit"), "{plan}");
        // the first step has a constant binding
        let first_line = plan.lines().nth(1).unwrap();
        assert!(first_line.contains("col"), "{first_line}");
    }

    #[test]
    fn explain_reports_scans_for_unconstrained_atoms() {
        let s = Schema::builder().relation("A", &["a"]).build().unwrap();
        let mut db = Database::empty(s.clone());
        db.insert_named("A", tup!["x"]).unwrap();
        let q = parse_query(&s, "(v) :- A(v)").unwrap();
        let plan = explain(&q, &db);
        assert!(plan.contains("scan (1 tuples)"), "{plan}");
    }

    #[test]
    fn seed_conflicting_with_head_constant_yields_nothing() {
        let (s, mut db) = world_cup();
        let q = q1(&s);
        assert!(assignments_for_answer(&q, &mut db, &tup!["GER", "extra"]).is_empty());
    }
}
