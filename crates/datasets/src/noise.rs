//! Controlled noise (Section 7.2).
//!
//! Two flavours:
//!
//! * [`inject_noise`] — the paper's global parameters: *degree of data
//!   cleanliness* `|D ∩ D_G| / (|D| + |D_G − D|)` and *noise skewness*
//!   `|D − D_G| / (|D − D_G| + |D_G − D|)`. The generator solves for the
//!   number of facts to remove (`m`) and to fabricate (`f`) and perturbs
//!   the ground truth accordingly.
//! * *query-aware planting* — Figures 3d–3f fix the number of wrong/missing
//!   answers of a specific query. [`plant_wrong_answers`] fabricates
//!   witnesses for fresh head values (guaranteed wrong, with a chosen
//!   number of witnesses each); [`plant_missing_answers`] removes a
//!   minimal hitting set of an answer's witnesses, verifying no collateral
//!   answer loss before committing.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qoco_data::{Database, Fact, Tuple, Value};
use qoco_engine::{answer_set, assignments_for_answer, witness_of};
use qoco_query::{ConjunctiveQuery, Term, Var};

/// Parameters for global (query-oblivious) noise.
#[derive(Debug, Clone, Copy)]
pub struct NoiseSpec {
    /// Target degree of data cleanliness in `(0, 1]`.
    pub cleanliness: f64,
    /// Target noise skewness in `[0, 1]` (1 = only false tuples, 0 = only
    /// missing tuples).
    pub skewness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        // the paper's defaults: cleanliness 80%
        NoiseSpec {
            cleanliness: 0.8,
            skewness: 1.0,
            seed: 1,
        }
    }
}

/// Produce a dirty copy of `ground` matching the cleanliness/skewness
/// targets as closely as integral fact counts allow.
///
/// # Panics
/// Panics if the parameters are outside their documented ranges.
pub fn inject_noise(ground: &Database, spec: NoiseSpec) -> Database {
    assert!(
        spec.cleanliness > 0.0 && spec.cleanliness <= 1.0,
        "cleanliness must be in (0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&spec.skewness),
        "skewness must be in [0, 1]"
    );
    let t = ground.len() as f64;
    let c = spec.cleanliness;
    let s = spec.skewness;
    // Solve |D∩DG| / (|D| + |DG−D|) = c with m removals and f fabrications:
    //   (T − m) / (T + f) = c   and   f / (f + m) = s.
    let (m, f) = if (s - 1.0).abs() < f64::EPSILON {
        (0.0, t * (1.0 - c) / c)
    } else {
        let m = t * (1.0 - c) * (1.0 - s) / ((1.0 - s) + c * s);
        (m, m * s / (1.0 - s))
    };
    let m = m.round() as usize;
    let f = f.round() as usize;

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut db = ground.clone();

    // removals
    let mut facts = ground.sorted_facts();
    for _ in 0..m.min(facts.len()) {
        let i = rng.random_range(0..facts.len());
        let victim = facts.swap_remove(i);
        db.remove(&victim).expect("removing an existing fact");
    }

    // fabrications: perturb one attribute of a random true fact
    let ground_facts = ground.sorted_facts();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < f && attempts < f * 50 + 100 {
        attempts += 1;
        let template = &ground_facts[rng.random_range(0..ground_facts.len())];
        let arity = template.tuple.arity();
        let col = rng.random_range(0..arity);
        let domain = ground.column_domain(template.rel, col);
        let replacement = if domain.len() > 1 && rng.random_range(0..4) > 0 {
            domain[rng.random_range(0..domain.len())].clone()
        } else {
            Value::text(format!("noise-{added}"))
        };
        let candidate = Fact::new(template.rel, template.tuple.with(col, replacement));
        if ground.contains(&candidate) || db.contains(&candidate) {
            continue;
        }
        db.insert(candidate).expect("schema-compatible fabrication");
        added += 1;
    }

    db
}

/// The result of planting answers.
#[derive(Debug, Clone)]
pub struct PlantOutcome {
    /// The dirty database.
    pub db: Database,
    /// The planted wrong answers (tuples now in `Q(D) − Q(D_G)`).
    pub wrong: Vec<Tuple>,
    /// The planted missing answers (tuples now in `Q(D_G) − Q(D)`).
    pub missing: Vec<Tuple>,
}

/// Plant exactly `k` wrong answers for `q` by promoting non-answers:
/// each planted answer rebinds the head variables of
/// `witnesses_per_answer` ground-truth witness templates to values from the
/// *active domain* of the head positions, fabricating only the facts that
/// do not already exist. The resulting witnesses mix true and false facts —
/// the structure of the paper's Example 4.6 (where `Teams(ESP, EU)` is true
/// but the extra finals are false). A candidate is committed only if it
/// introduces exactly one new answer (no side effects on `q`); if no domain
/// candidate survives, a fresh constant is used as a guaranteed fallback.
///
/// # Panics
/// Panics if `q` has no valid assignment over the ground truth to use as a
/// witness template (the evaluation queries all do), or if a wrong answer
/// cannot be planted within the attempt budget.
pub fn plant_wrong_answers(
    q: &ConjunctiveQuery,
    ground: &Database,
    k: usize,
    witnesses_per_answer: usize,
    seed: u64,
) -> PlantOutcome {
    plant_wrong_answers_excluding(q, ground, k, witnesses_per_answer, seed, &BTreeSet::new())
}

/// [`plant_wrong_answers`] with a set of head tuples that must not be used
/// as planted answers — the mixed planter passes the just-removed missing
/// answers here, since promoting one of those would create a *true* answer,
/// not a wrong one.
pub fn plant_wrong_answers_excluding(
    q: &ConjunctiveQuery,
    ground: &Database,
    k: usize,
    witnesses_per_answer: usize,
    seed: u64,
    exclude: &BTreeSet<Tuple>,
) -> PlantOutcome {
    let mut db = ground.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let templates = {
        let gm = ground.clone();
        qoco_engine::evaluate(q, &gm).assignments
    };
    assert!(
        !templates.is_empty(),
        "query {} has no ground-truth assignments to clone witnesses from",
        q.name()
    );
    let head_vars = q.head_vars();

    // candidate values per head variable: the ground-truth domain of every
    // (relation, column) position the variable occurs at
    let mut var_domains: Vec<(Var, Vec<Value>)> = Vec::new();
    for v in &head_vars {
        let mut dom: BTreeSet<Value> = BTreeSet::new();
        for atom in q.atoms() {
            for (col, term) in atom.terms.iter().enumerate() {
                if term.as_var() == Some(v) {
                    dom.extend(ground.column_domain(atom.rel, col));
                }
            }
        }
        var_domains.push((v.clone(), dom.into_iter().collect()));
    }

    let truth: BTreeSet<Tuple> = {
        let gm = ground.clone();
        answer_set(q, &gm).into_iter().collect()
    };
    let mut planted: BTreeSet<Tuple> = BTreeSet::new();
    let mut wrong = Vec::with_capacity(k);

    // variable domains for completing the fabricated part of a witness
    let all_var_domains: Vec<(Var, Vec<Value>)> = {
        let mut out = Vec::new();
        let mut seen: BTreeSet<Var> = BTreeSet::new();
        for atom in q.atoms() {
            for (col, term) in atom.terms.iter().enumerate() {
                if let Some(v) = term.as_var() {
                    if seen.insert(v.clone()) {
                        out.push((v.clone(), ground.column_domain(atom.rel, col)));
                    }
                }
            }
        }
        out
    };

    'answers: for i in 0..k {
        // try domain candidates first, then a fresh-constant fallback
        for attempt in 0..200 {
            let fresh: Vec<(Var, Value)> = if attempt < 150 {
                var_domains
                    .iter()
                    .map(|(v, dom)| (v.clone(), dom[rng.random_range(0..dom.len())].clone()))
                    .collect()
            } else {
                head_vars
                    .iter()
                    .map(|v| (v.clone(), Value::text(format!("wrong-{seed}-{i}-{v}"))))
                    .collect()
            };
            let head: Tuple = q
                .head()
                .iter()
                .map(|term| match term {
                    Term::Const(c) => c.clone(),
                    Term::Var(v) => fresh
                        .iter()
                        .find(|(f, _)| f == v)
                        .expect("head var")
                        .1
                        .clone(),
                })
                .collect();
            if truth.contains(&head) || planted.contains(&head) || exclude.contains(&head) {
                continue;
            }
            let Ok(q_v) = qoco_query::embed_answer(q, head.values()) else {
                continue; // head violates an inequality or a head constant
            };

            // Find the maximal subset of atoms of Q|v satisfiable over the
            // ground truth: those atoms will contribute *true* facts to the
            // planted witnesses — the paper's mixed-witness structure
            // (Example 4.6: Teams(ESP, EU) true, extra finals false).
            let n_atoms = q_v.atoms().len();
            let mut sat_atoms: Vec<usize> = Vec::new();
            {
                let gm = ground.clone();
                for a in 0..n_atoms {
                    let mut trial = sat_atoms.clone();
                    trial.push(a);
                    if let Ok(sub) = qoco_query::split_subset(&q_v, &trial) {
                        if qoco_engine::is_satisfiable(&sub, &gm, &qoco_engine::Assignment::new()) {
                            sat_atoms = trial;
                        }
                    }
                }
            }
            if sat_atoms.len() == n_atoms {
                continue; // the head is effectively an answer already
            }
            // Tiered preference: early attempts demand maximal partial
            // support (all but one atom true — the ESP structure, where a
            // single kind of false fact hides among true ones), middle
            // attempts demand some support, late attempts take anything.
            if attempt < 70 && sat_atoms.len() + 1 < n_atoms {
                continue;
            }
            if attempt < 140 && sat_atoms.is_empty() {
                continue;
            }

            // base assignments: valid assignments of the satisfiable part
            let bases: Vec<qoco_engine::Assignment> = if sat_atoms.is_empty() {
                vec![qoco_engine::Assignment::new()]
            } else {
                let sub = qoco_query::split_subset(&q_v, &sat_atoms)
                    .expect("sat_atoms indexes are valid");
                let gm = ground.clone();
                qoco_engine::all_assignments(
                    &sub,
                    &gm,
                    &qoco_engine::Assignment::new(),
                    qoco_engine::EvalOptions {
                        max_assignments: witnesses_per_answer.max(1) * 4,
                        ..qoco_engine::EvalOptions::default()
                    },
                )
                .assignments
            };

            // fabricate witnesses: complete each base over the remaining
            // variables with random domain values, inserting only the facts
            // that do not exist in the ground truth
            let mut inserted: Vec<Fact> = Vec::new();
            let mut built = 0usize;
            'bases: for base in bases.iter().cycle().take(witnesses_per_answer.max(1) * 6) {
                if built >= witnesses_per_answer.max(1) {
                    break;
                }
                // extend to a total assignment of q_v
                let mut total = base.clone();
                let mut ok = true;
                for v in q_v.vars() {
                    if total.get(&v).is_some() {
                        continue;
                    }
                    let dom = all_var_domains
                        .iter()
                        .find(|(dv, _)| *dv == v)
                        .map(|(_, d)| d.as_slice())
                        .unwrap_or(&[]);
                    if dom.is_empty() {
                        ok = false;
                        break;
                    }
                    let val = dom[rng.random_range(0..dom.len())].clone();
                    total.bind(v, val);
                }
                if !ok {
                    continue 'bases;
                }
                for e in q_v.inequalities() {
                    if total.check_inequality(e) != Some(true) {
                        continue 'bases;
                    }
                }
                for atom in q_v.atoms() {
                    let fact = total.ground_atom(atom).expect("total assignment");
                    if !db.contains(&fact) {
                        db.insert(fact.clone())
                            .expect("planted fact matches schema");
                        inserted.push(fact);
                    }
                }
                built += 1;
            }
            if built == 0 || inserted.is_empty() {
                for f in inserted {
                    db.remove(&f).expect("removing a planted fact");
                }
                continue;
            }
            // verify: exactly this one new answer appeared
            let now: BTreeSet<Tuple> = answer_set(q, &db).into_iter().collect();
            let mut want: BTreeSet<Tuple> = truth.union(&planted).cloned().collect();
            want.insert(head.clone());
            if now == want {
                planted.insert(head.clone());
                wrong.push(head);
                continue 'answers;
            }
            // rollback and try another candidate
            for f in inserted {
                db.remove(&f).expect("removing a planted fact");
            }
        }
        panic!(
            "could not plant wrong answer {i} for {} within the attempt budget",
            q.name()
        );
    }
    wrong.sort();
    wrong.dedup();
    PlantOutcome {
        db,
        wrong,
        missing: Vec::new(),
    }
}

/// Plant up to `k` missing answers for `q` by deleting, per chosen answer,
/// a greedy hitting set of its witnesses. A candidate answer is committed
/// only if its removal does not collaterally remove other answers, so the
/// outcome has *exactly* the reported missing answers (fewer than `k` only
/// when the query lacks enough independent answers).
pub fn plant_missing_answers(
    q: &ConjunctiveQuery,
    ground: &Database,
    k: usize,
    seed: u64,
) -> PlantOutcome {
    let mut db = ground.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut answers = answer_set(q, &db);
    // shuffle deterministically so different seeds kill different answers
    for i in (1..answers.len()).rev() {
        answers.swap(i, rng.random_range(0..=i));
    }
    let mut missing = Vec::new();
    let mut expected: BTreeSet<Tuple> = answer_set(q, &db).into_iter().collect();
    for t in answers {
        if missing.len() >= k {
            break;
        }
        // greedy hitting set over the answer's witnesses
        let mut sets: Vec<BTreeSet<Fact>> = assignments_for_answer(q, &db, &t)
            .iter()
            .map(|a| witness_of(q, a).expect("valid assignments are total"))
            .collect();
        sets.sort();
        sets.dedup();
        if sets.is_empty() {
            continue;
        }
        let mut removed: Vec<Fact> = Vec::new();
        while !sets.is_empty() {
            // most frequent fact across remaining witnesses
            let mut best: Option<(usize, Fact)> = None;
            let universe: BTreeSet<Fact> = sets.iter().flatten().cloned().collect();
            for f in universe {
                let freq = sets.iter().filter(|s| s.contains(&f)).count();
                match &best {
                    Some((bf, bfact)) if *bf > freq || (*bf == freq && *bfact <= f) => {}
                    _ => best = Some((freq, f)),
                }
            }
            let (_, fact) = best.expect("non-empty sets have a universe");
            sets.retain(|s| !s.contains(&fact));
            db.remove(&fact).expect("removing an existing fact");
            removed.push(fact);
        }
        // verify: exactly t disappeared
        let now: BTreeSet<Tuple> = answer_set(q, &db).into_iter().collect();
        let mut want = expected.clone();
        want.remove(&t);
        if now == want {
            expected = want;
            missing.push(t);
        } else {
            // rollback the collateral damage and try another answer
            for f in removed {
                db.insert(f).expect("restoring a removed fact");
            }
        }
    }
    missing.sort();
    PlantOutcome {
        db,
        wrong: Vec::new(),
        missing,
    }
}

/// Plant both kinds: first `k_missing` missing answers, then `k_wrong`
/// wrong ones (the mixed setting of Figures 3c and 3f).
pub fn plant_mixed(
    q: &ConjunctiveQuery,
    ground: &Database,
    k_wrong: usize,
    k_missing: usize,
    seed: u64,
) -> PlantOutcome {
    let missing_outcome = plant_missing_answers(q, ground, k_missing, seed);
    let exclude: BTreeSet<Tuple> = missing_outcome.missing.iter().cloned().collect();
    let wrong_outcome =
        plant_wrong_answers_excluding(q, &missing_outcome.db, k_wrong, 2, seed ^ 0x9e37, &exclude);
    PlantOutcome {
        db: wrong_outcome.db,
        wrong: wrong_outcome.wrong,
        missing: missing_outcome.missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::soccer_query;
    use crate::soccer::{generate_soccer, SoccerConfig};
    use qoco_data::diff;

    fn ground() -> Database {
        generate_soccer(SoccerConfig::default())
    }

    #[test]
    fn cleanliness_target_is_met() {
        let g = ground();
        for target in [0.6, 0.8, 0.95] {
            let d = inject_noise(
                &g,
                NoiseSpec {
                    cleanliness: target,
                    skewness: 1.0,
                    seed: 3,
                },
            );
            let r = diff(&d, &g).unwrap();
            assert!(
                (r.cleanliness() - target).abs() < 0.02,
                "target {target}, got {}",
                r.cleanliness()
            );
            assert_eq!(r.missing_facts.len(), 0, "skew 1.0 ⇒ no missing facts");
        }
    }

    #[test]
    fn skewness_target_is_met() {
        let g = ground();
        for skew in [0.0, 0.5, 1.0] {
            let d = inject_noise(
                &g,
                NoiseSpec {
                    cleanliness: 0.8,
                    skewness: skew,
                    seed: 4,
                },
            );
            let r = diff(&d, &g).unwrap();
            if r.distance() > 0 {
                assert!(
                    (r.skewness() - skew).abs() < 0.05,
                    "target skew {skew}, got {}",
                    r.skewness()
                );
            }
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let g = ground();
        let spec = NoiseSpec::default();
        assert_eq!(
            inject_noise(&g, spec).sorted_facts(),
            inject_noise(&g, spec).sorted_facts()
        );
        let other = inject_noise(&g, NoiseSpec { seed: 9, ..spec });
        assert_ne!(inject_noise(&g, spec).sorted_facts(), other.sorted_facts());
    }

    #[test]
    #[should_panic(expected = "cleanliness")]
    fn bad_cleanliness_panics() {
        let g = ground();
        let _ = inject_noise(
            &g,
            NoiseSpec {
                cleanliness: 0.0,
                skewness: 1.0,
                seed: 1,
            },
        );
    }

    #[test]
    fn planted_wrong_answers_are_wrong_and_exact() {
        let g = ground();
        for (qi, k) in [(1usize, 3usize), (3, 5)] {
            let q = soccer_query(g.schema(), qi);
            let outcome = plant_wrong_answers(&q, &g, k, 2, 17);
            let d = outcome.db.clone();
            let gm = g.clone();
            let dirty: BTreeSet<Tuple> = answer_set(&q, &d).into_iter().collect();
            let truth: BTreeSet<Tuple> = answer_set(&q, &gm).into_iter().collect();
            let extra: Vec<&Tuple> = dirty.difference(&truth).collect();
            assert_eq!(extra.len(), k, "Q{qi}: wrong answers planted");
            assert_eq!(outcome.wrong.len(), k);
            for w in &outcome.wrong {
                assert!(dirty.contains(w) && !truth.contains(w));
            }
        }
    }

    #[test]
    fn planted_wrong_answers_have_requested_witness_counts() {
        let g = ground();
        let q = soccer_query(g.schema(), 3);
        let outcome = plant_wrong_answers(&q, &g, 2, 3, 23);
        let d = outcome.db.clone();
        for w in &outcome.wrong {
            // fabricated facts cross-combine (any fabricated game joins any
            // compatible Teams fact), so the requested count is a lower
            // bound on the combinatorial witness count — exactly as the
            // paper's ESP example turns 3 false finals into 6 witnesses.
            let n = qoco_engine::witnesses_for_answer(&q, &d, w).len();
            assert!(n >= 1, "planted answer must have a witness");
            assert!(n <= 100, "witness count {n} exploded");
        }
    }

    #[test]
    fn planted_missing_answers_are_missing_and_exact() {
        let g = ground();
        for (qi, k) in [(1usize, 2usize), (3, 5)] {
            let q = soccer_query(g.schema(), qi);
            let outcome = plant_missing_answers(&q, &g, k, 31);
            assert_eq!(outcome.missing.len(), k, "Q{qi}");
            let d = outcome.db.clone();
            let gm = g.clone();
            let dirty: BTreeSet<Tuple> = answer_set(&q, &d).into_iter().collect();
            let truth: BTreeSet<Tuple> = answer_set(&q, &gm).into_iter().collect();
            let missing: Vec<Tuple> = truth.difference(&dirty).cloned().collect();
            assert_eq!(
                missing, outcome.missing,
                "exactly the planted answers are missing"
            );
            // no wrong answers introduced
            assert!(dirty.is_subset(&truth));
        }
    }

    #[test]
    fn planting_missing_only_removes_facts() {
        let g = ground();
        let q = soccer_query(g.schema(), 1);
        let outcome = plant_missing_answers(&q, &g, 2, 8);
        let r = diff(&outcome.db, &g).unwrap();
        assert!(r.false_facts.is_empty());
        assert!(!r.missing_facts.is_empty());
    }

    #[test]
    fn mixed_planting_counts_both_kinds() {
        let g = ground();
        let q = soccer_query(g.schema(), 3);
        let outcome = plant_mixed(&q, &g, 3, 2, 12);
        assert_eq!(outcome.wrong.len(), 3);
        assert_eq!(outcome.missing.len(), 2);
        let d = outcome.db.clone();
        let gm = g.clone();
        let dirty: BTreeSet<Tuple> = answer_set(&q, &d).into_iter().collect();
        let truth: BTreeSet<Tuple> = answer_set(&q, &gm).into_iter().collect();
        for w in &outcome.wrong {
            assert!(dirty.contains(w) && !truth.contains(w));
        }
        for m in &outcome.missing {
            assert!(!dirty.contains(m) && truth.contains(m));
        }
    }
}
