//! The synthetic World-Cup Soccer database (~5000 tuples).
//!
//! Real anchor data: the twenty World-Cup finals 1930–2014 (public record —
//! the same facts the paper's Figure 1 samples). Around this skeleton the
//! generator adds, deterministically from a seed: group and knockout games
//! per tournament (with the bracket arranged so the real finalists indeed
//! reach the final), a fixed set of rivalry rematches (so that "played at
//! least twice against each other" queries have answers), squads of players
//! per national team, goal records consistent with the game scores, and
//! club affiliations.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qoco_data::{Database, Schema, Tuple, Value};

/// `(date, winner, runner-up, score)` of every World-Cup final 1930–2014.
/// Scores of the 1994 and 2006 finals follow the paper's Figure 1
/// convention of recording the deciding (penalty) score.
pub const WORLD_CUP_FINALS: [(&str, &str, &str, &str); 20] = [
    ("30.07.1930", "URU", "ARG", "4:2"),
    ("10.06.1934", "ITA", "TCH", "2:1"),
    ("19.06.1938", "ITA", "HUN", "4:2"),
    ("16.07.1950", "URU", "BRA", "2:1"),
    ("04.07.1954", "GER", "HUN", "3:2"),
    ("29.06.1958", "BRA", "SWE", "5:2"),
    ("17.06.1962", "BRA", "TCH", "3:1"),
    ("30.07.1966", "ENG", "GER", "4:2"),
    ("21.06.1970", "BRA", "ITA", "4:1"),
    ("07.07.1974", "GER", "NED", "2:1"),
    ("25.06.1978", "ARG", "NED", "3:1"),
    ("11.07.1982", "ITA", "GER", "3:1"),
    ("29.06.1986", "ARG", "GER", "3:2"),
    ("08.07.1990", "GER", "ARG", "1:0"),
    ("17.07.1994", "BRA", "ITA", "3:2"),
    ("12.07.1998", "FRA", "BRA", "3:0"),
    ("30.06.2002", "BRA", "GER", "2:0"),
    ("09.07.2006", "ITA", "FRA", "5:3"),
    ("11.07.2010", "ESP", "NED", "1:0"),
    ("13.07.2014", "GER", "ARG", "1:0"),
];

/// `(country, continent)` for every national team in the generator.
pub const TEAMS: [(&str, &str); 48] = [
    ("GER", "EU"),
    ("ITA", "EU"),
    ("FRA", "EU"),
    ("ESP", "EU"),
    ("NED", "EU"),
    ("ENG", "EU"),
    ("POR", "EU"),
    ("SWE", "EU"),
    ("HUN", "EU"),
    ("TCH", "EU"),
    ("POL", "EU"),
    ("BEL", "EU"),
    ("AUT", "EU"),
    ("SUI", "EU"),
    ("CRO", "EU"),
    ("DEN", "EU"),
    ("RUS", "EU"),
    ("ROU", "EU"),
    ("BUL", "EU"),
    ("SCO", "EU"),
    ("BRA", "SA"),
    ("ARG", "SA"),
    ("URU", "SA"),
    ("CHI", "SA"),
    ("COL", "SA"),
    ("PER", "SA"),
    ("PAR", "SA"),
    ("ECU", "SA"),
    ("MEX", "NA"),
    ("USA", "NA"),
    ("CRC", "NA"),
    ("HON", "NA"),
    ("CMR", "AF"),
    ("NGA", "AF"),
    ("GHA", "AF"),
    ("SEN", "AF"),
    ("EGY", "AF"),
    ("MAR", "AF"),
    ("ALG", "AF"),
    ("TUN", "AF"),
    ("RSA", "AF"),
    ("CIV", "AF"),
    ("JPN", "AS"),
    ("KOR", "AS"),
    ("KSA", "AS"),
    ("IRN", "AS"),
    ("CHN", "AS"),
    ("AUS", "AS"),
];

const FIRST_NAMES: [&str; 24] = [
    "Luca", "Marco", "Diego", "Juan", "Carlos", "Pedro", "Miguel", "Hans", "Karl", "Fritz",
    "Pierre", "Michel", "Johan", "Ruud", "Gary", "Bobby", "Zoltan", "Pavel", "Sven", "Erik",
    "Kofi", "Samuel", "Hiro", "Jin",
];

const LAST_NAMES: [&str; 24] = [
    "Rossi",
    "Bianchi",
    "Silva",
    "Santos",
    "Garcia",
    "Lopez",
    "Muller",
    "Schmidt",
    "Weber",
    "Dupont",
    "Martin",
    "Vries",
    "Bakker",
    "Smith",
    "Jones",
    "Nagy",
    "Novak",
    "Larsson",
    "Berg",
    "Mensah",
    "Osei",
    "Tanaka",
    "Kim",
    "Fernandez",
];

const CLUBS: [&str; 16] = [
    "Real Madrid",
    "Barcelona",
    "Bayern Munich",
    "Juventus",
    "AC Milan",
    "Inter",
    "Ajax",
    "PSV",
    "Porto",
    "Benfica",
    "Liverpool",
    "Manchester United",
    "Boca Juniors",
    "River Plate",
    "Santos FC",
    "Flamengo",
];

/// Rivalry rematches guaranteeing non-empty answers for the "played at
/// least twice against each other / lost twice with the same score" style
/// queries: `(date, winner, runner_up, stage, result)`.
const RIVALRIES: [(&str, &str, &str, &str, &str); 6] = [
    ("18.06.1990", "GER", "NED", "Round16", "2:1"),
    ("22.06.1998", "FRA", "ITA", "Quarter", "1:0"),
    ("02.07.2006", "ITA", "FRA", "Group", "2:0"),
    ("27.06.2010", "ESP", "POR", "Round16", "1:0"),
    ("05.07.2014", "ESP", "POR", "Group", "1:0"),
    ("28.06.2002", "BRA", "ARG", "Quarter", "2:1"),
];

/// Configuration for the soccer generator.
#[derive(Debug, Clone, Copy)]
pub struct SoccerConfig {
    /// RNG seed (full determinism per seed).
    pub seed: u64,
    /// Squad size per national team.
    pub players_per_team: usize,
    /// Group games generated per tournament.
    pub group_games_per_cup: usize,
}

impl Default for SoccerConfig {
    fn default() -> Self {
        SoccerConfig {
            seed: 2015,
            players_per_team: 23,
            group_games_per_cup: 12,
        }
    }
}

/// The soccer schema (Figure 1 plus Clubs).
pub fn soccer_schema() -> Arc<Schema> {
    Schema::builder()
        .relation("Games", &["date", "winner", "runner_up", "stage", "result"])
        .relation("Teams", &["country", "continent"])
        .relation("Players", &["name", "team", "birth_year", "birth_place"])
        .relation("Goals", &["player", "date"])
        .relation("Clubs", &["player", "club"])
        .build()
        .expect("static schema is valid")
}

/// Generate the ground-truth soccer database.
pub fn generate_soccer(config: SoccerConfig) -> Database {
    let schema = soccer_schema();
    let mut db = Database::empty(schema);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Teams
    for (country, continent) in TEAMS {
        db.insert_named("Teams", Tuple::new(vec![country.into(), continent.into()]))
            .expect("teams arity");
    }

    // Players: deterministic unique names per team
    let mut squads: Vec<(String, Vec<String>)> = Vec::new();
    let mut used_names: std::collections::HashSet<String> = Default::default();
    for (country, _) in TEAMS {
        let mut squad = Vec::new();
        for _ in 0..config.players_per_team {
            let name;
            loop {
                let f = FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())];
                let l = LAST_NAMES[rng.random_range(0..LAST_NAMES.len())];
                let candidate = format!("{f} {l}");
                if used_names.insert(candidate.clone()) {
                    name = candidate;
                    break;
                }
                // on collision, qualify with a numeral suffix
                let qualified = format!("{f} {l} {}", used_names.len());
                if used_names.insert(qualified.clone()) {
                    name = qualified;
                    break;
                }
            }
            let birth_year = 1950 + rng.random_range(0..45) as i64;
            let birth_place = if rng.random_range(0..10) == 0 {
                TEAMS[rng.random_range(0..TEAMS.len())].0
            } else {
                country
            };
            db.insert_named(
                "Players",
                Tuple::new(vec![
                    name.as_str().into(),
                    country.into(),
                    Value::Int(birth_year),
                    birth_place.into(),
                ]),
            )
            .expect("players arity");
            let club = CLUBS[rng.random_range(0..CLUBS.len())];
            db.insert_named("Clubs", Tuple::new(vec![name.as_str().into(), club.into()]))
                .expect("clubs arity");
            squad.push(name);
        }
        squads.push((country.to_string(), squad));
    }
    let squad_of = |team: &str| -> &[String] {
        squads
            .iter()
            .find(|(c, _)| c == team)
            .map(|(_, s)| s.as_slice())
            .expect("every game team has a squad")
    };

    // Games + Goals per tournament
    let mut games: Vec<(String, String, String, String, String)> = Vec::new();
    for (final_date, winner, runner_up, score) in WORLD_CUP_FINALS {
        let year: u32 = final_date[6..].parse().expect("final dates end in a year");
        games.push((
            final_date.to_string(),
            winner.to_string(),
            runner_up.to_string(),
            "Final".to_string(),
            score.to_string(),
        ));
        // choose 16 participants: both finalists plus a deterministic
        // rotation of the pool
        let mut participants: Vec<&str> = vec![winner, runner_up];
        let mut i = (year as usize) % TEAMS.len();
        while participants.len() < 16 {
            let cand = TEAMS[i].0;
            if !participants.contains(&cand) {
                participants.push(cand);
            }
            i = (i + 1) % TEAMS.len();
        }
        // bracket: finalists placed in opposite halves and always advancing
        let mut day = 1u32;
        let date = |day: &mut u32| {
            let d = format!("{:02}.06.{}", *day, year);
            *day += 1;
            d
        };
        // round of 16: pairs (0,8), (1,9), … with finalists at 0 and 8
        let mut quarter: Vec<&str> = Vec::new();
        for g in 0..8 {
            let (a, b) = (participants[g], participants[g + 8]);
            let w = if a == winner || a == runner_up {
                a
            } else if b == winner || b == runner_up {
                b
            } else if rng.random::<bool>() {
                a
            } else {
                b
            };
            let l = if w == a { b } else { a };
            let (ws, ls) = random_score(&mut rng);
            games.push((
                date(&mut day),
                w.to_string(),
                l.to_string(),
                "Round16".into(),
                format!("{ws}:{ls}"),
            ));
            quarter.push(w);
        }
        // quarters: (0,1),(2,3),(4,5),(6,7) — finalists are at 0 and 4
        let mut semi: Vec<&str> = Vec::new();
        for g in 0..4 {
            let (a, b) = (quarter[2 * g], quarter[2 * g + 1]);
            let w = if a == winner || a == runner_up {
                a
            } else if b == winner || b == runner_up {
                b
            } else if rng.random::<bool>() {
                a
            } else {
                b
            };
            let l = if w == a { b } else { a };
            let (ws, ls) = random_score(&mut rng);
            games.push((
                date(&mut day),
                w.to_string(),
                l.to_string(),
                "Quarter".into(),
                format!("{ws}:{ls}"),
            ));
            semi.push(w);
        }
        // semis: (0,1) and (2,3) — finalists at 0 and 2 always advance
        for g in 0..2 {
            let (a, b) = (semi[2 * g], semi[2 * g + 1]);
            let w = if a == winner || a == runner_up { a } else { b };
            let l = if w == a { b } else { a };
            let (ws, ls) = random_score(&mut rng);
            games.push((
                date(&mut day),
                w.to_string(),
                l.to_string(),
                "Semi".into(),
                format!("{ws}:{ls}"),
            ));
        }
        // group games among the participants
        for _ in 0..config.group_games_per_cup {
            let a = participants[rng.random_range(0..participants.len())];
            let b = participants[rng.random_range(0..participants.len())];
            if a == b {
                continue;
            }
            let (ws, ls) = random_score(&mut rng);
            games.push((
                date(&mut day),
                a.to_string(),
                b.to_string(),
                "Group".into(),
                format!("{ws}:{ls}"),
            ));
        }
    }
    for (d, w, r, s, u) in RIVALRIES {
        games.push((d.into(), w.into(), r.into(), s.into(), u.into()));
    }

    for (d, w, r, s, u) in &games {
        db.insert_named(
            "Games",
            Tuple::new(vec![
                d.as_str().into(),
                w.as_str().into(),
                r.as_str().into(),
                s.as_str().into(),
                u.as_str().into(),
            ]),
        )
        .expect("games arity");
        // goals: one Goals fact per goal, attributed to squad members
        let (ws, ls) = parse_score(u);
        for (team, count) in [(w, ws), (r, ls)] {
            let squad = squad_of(team);
            for _ in 0..count {
                let scorer = &squad[rng.random_range(0..squad.len())];
                db.insert_named(
                    "Goals",
                    Tuple::new(vec![scorer.as_str().into(), d.as_str().into()]),
                )
                .expect("goals arity");
            }
        }
    }

    db
}

fn random_score(rng: &mut StdRng) -> (u32, u32) {
    let winner = 1 + rng.random_range(0..4);
    let loser = rng.random_range(0..winner);
    (winner, loser)
}

fn parse_score(s: &str) -> (u32, u32) {
    let (a, b) = s.split_once(':').expect("scores look like w:l");
    (
        a.parse().expect("numeric score"),
        b.parse().expect("numeric score"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::tup;

    fn db() -> Database {
        generate_soccer(SoccerConfig::default())
    }

    #[test]
    fn size_is_about_five_thousand_tuples() {
        let d = db();
        let n = d.len();
        assert!(
            (3500..=7000).contains(&n),
            "paper's soccer DB is ~5000 tuples; generated {n}"
        );
    }

    #[test]
    fn real_finals_are_present() {
        let d = db();
        let games = d.schema().rel_id("Games").unwrap();
        for (dt, w, r, s) in [
            ("13.07.2014", "GER", "ARG", "1:0"),
            ("11.07.2010", "ESP", "NED", "1:0"),
            ("09.07.2006", "ITA", "FRA", "5:3"),
        ] {
            assert!(
                d.contains(&qoco_data::Fact::new(games, tup![dt, w, r, "Final", s])),
                "missing final {dt}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_soccer(SoccerConfig::default());
        let b = generate_soccer(SoccerConfig::default());
        assert_eq!(a.sorted_facts(), b.sorted_facts());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_soccer(SoccerConfig::default());
        let b = generate_soccer(SoccerConfig {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a.sorted_facts(), b.sorted_facts());
    }

    #[test]
    fn goals_match_game_scores() {
        let d = db();
        let games = d.schema().rel_id("Games").unwrap();
        let goals = d.schema().rel_id("Goals").unwrap();
        // total goals = sum of scores over all games
        let total_score: u32 = d
            .relation(games)
            .iter()
            .map(|t| {
                let (a, b) = parse_score(t.values()[4].as_text().unwrap());
                a + b
            })
            .sum();
        // Goals is a set; the same player may score twice in a game and
        // collapse into one fact, so Goals ≤ total and reasonably close.
        let recorded = d.relation(goals).len() as u32;
        assert!(recorded <= total_score);
        assert!(
            recorded as f64 >= total_score as f64 * 0.5,
            "{recorded} vs {total_score}"
        );
    }

    #[test]
    fn every_game_team_exists() {
        let d = db();
        let games = d.schema().rel_id("Games").unwrap();
        let teams = d.schema().rel_id("Teams").unwrap();
        let team_names: std::collections::HashSet<Value> = d
            .relation(teams)
            .iter()
            .map(|t| t.values()[0].clone())
            .collect();
        for g in d.relation(games).iter() {
            assert!(team_names.contains(&g.values()[1]), "unknown winner in {g}");
            assert!(
                team_names.contains(&g.values()[2]),
                "unknown runner-up in {g}"
            );
        }
    }

    #[test]
    fn every_scorer_is_a_player() {
        let d = db();
        let players = d.schema().rel_id("Players").unwrap();
        let goals = d.schema().rel_id("Goals").unwrap();
        let player_names: std::collections::HashSet<Value> = d
            .relation(players)
            .iter()
            .map(|t| t.values()[0].clone())
            .collect();
        for g in d.relation(goals).iter() {
            assert!(player_names.contains(&g.values()[0]), "unknown scorer {g}");
        }
    }

    #[test]
    fn stages_are_well_formed() {
        let d = db();
        let games = d.schema().rel_id("Games").unwrap();
        let stages: std::collections::HashSet<&str> =
            ["Final", "Semi", "Quarter", "Round16", "Group"].into();
        for g in d.relation(games).iter() {
            assert!(stages.contains(g.values()[3].as_text().unwrap()));
        }
        // exactly 20 finals
        let finals = d
            .relation(games)
            .iter()
            .filter(|t| t.values()[3].as_text() == Some("Final"))
            .count();
        assert_eq!(finals, 20);
    }

    #[test]
    fn rivalry_rematches_exist() {
        let d = db();
        let games = d.schema().rel_id("Games").unwrap();
        // ESP beat POR twice (2010 + 2014)
        let esp_por = d
            .relation(games)
            .iter()
            .filter(|t| t.values()[1] == Value::text("ESP") && t.values()[2] == Value::text("POR"))
            .count();
        assert!(esp_por >= 2);
    }
}
