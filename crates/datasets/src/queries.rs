//! The evaluation queries of Section 7.
//!
//! Soccer (inspired by World-Cup trivia quizzes, Section 7.2):
//!
//! * **Q1** European teams who lost at least two finals;
//! * **Q2** teams from the same continent that played (lost) at least twice
//!   against each other;
//! * **Q3** non-Asian teams that reached the knockout phase and won at
//!   least once;
//! * **Q4** teams that lost two games with the same score;
//! * **Q5** teams that won at least two games, one opponent South American.
//!
//! DBGroup (the grant-report queries of Section 7.1):
//!
//! * **DQ1** keynotes and tutorials on topics related to ERC;
//! * **DQ2** current group members financed by ERC;
//! * **DQ3** students whose recent conference travel was ERC-sponsored;
//! * **DQ4** recent publications on crowdsourcing.

use std::sync::Arc;

use qoco_data::Schema;
use qoco_query::{parse_query, ConjunctiveQuery};

/// The five soccer queries over the given (soccer) schema.
pub fn soccer_queries(schema: &Arc<Schema>) -> Vec<ConjunctiveQuery> {
    let texts = [
        (
            "Q1",
            r#"Q1(x) :- Games(d1, y, x, "Final", u1), Games(d2, z, x, "Final", u2), Teams(x, "EU"), d1 != d2."#,
        ),
        (
            "Q2",
            r#"Q2(x, y) :- Games(d1, x, y, s1, u1), Games(d2, x, y, s2, u2), Teams(x, c), Teams(y, c), d1 != d2."#,
        ),
        (
            "Q3",
            r#"Q3(x) :- Games(d, x, y, s, u), Teams(x, c), s != "Group", c != "AS"."#,
        ),
        (
            "Q4",
            r#"Q4(x) :- Games(d1, y, x, s1, u), Games(d2, z, x, s2, u), Teams(x, c), d1 != d2."#,
        ),
        (
            "Q5",
            r#"Q5(x) :- Games(d1, x, y, s1, u1), Games(d2, x, z, s2, u2), Teams(y, "SA"), d1 != d2."#,
        ),
    ];
    texts
        .into_iter()
        .map(|(name, text)| {
            parse_query(schema, text).unwrap_or_else(|e| panic!("{name} must parse: {e}"))
        })
        .collect()
}

/// One soccer query by 1-based index (`1..=5`).
///
/// # Panics
/// Panics when `idx` is out of range.
pub fn soccer_query(schema: &Arc<Schema>, idx: usize) -> ConjunctiveQuery {
    assert!((1..=5).contains(&idx), "soccer queries are Q1..Q5");
    soccer_queries(schema).remove(idx - 1)
}

/// The four DBGroup report queries over the given (dbgroup) schema.
pub fn dbgroup_queries(schema: &Arc<Schema>) -> Vec<ConjunctiveQuery> {
    let texts = [
        (
            "DQ1",
            r#"DQ1(m, e) :- Talks(m, e, p, k, t), GrantTopics("ERC", t), k != "Regular"."#,
        ),
        (
            "DQ2",
            r#"DQ2(m) :- Members(m, r, "current"), Funding(m, "ERC")."#,
        ),
        (
            "DQ3",
            r#"DQ3(m, c) :- Members(m, r, s), Travels(m, c, "recent", "ERC"), r != "Faculty", r != "Postdoc"."#,
        ),
        (
            "DQ4",
            r#"DQ4(t) :- Publications(t, a, "recent", "crowdsourcing")."#,
        ),
    ];
    texts
        .into_iter()
        .map(|(name, text)| {
            parse_query(schema, text).unwrap_or_else(|e| panic!("{name} must parse: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgroup::{generate_dbgroup, DbGroupConfig};
    use crate::soccer::{generate_soccer, SoccerConfig};
    use qoco_data::tup;
    use qoco_engine::answer_set;

    #[test]
    fn soccer_queries_parse_and_have_answers() {
        let db = generate_soccer(SoccerConfig::default());
        let queries = soccer_queries(db.schema());
        assert_eq!(queries.len(), 5);
        for q in &queries {
            let answers = answer_set(q, &db);
            assert!(
                !answers.is_empty(),
                "{} has no answers on the ground truth",
                q.name()
            );
        }
    }

    #[test]
    fn q1_losers_of_two_finals() {
        let db = generate_soccer(SoccerConfig::default());
        let q1 = soccer_query(db.schema(), 1);
        let answers = answer_set(&q1, &db);
        // GER lost the 1966, 1982, 1986, 2002 finals; NED lost 1974, 1978,
        // 2010; ITA lost 1970, 1994; HUN lost 1938, 1954 — all European.
        for team in ["GER", "NED", "ITA", "HUN"] {
            assert!(
                answers.contains(&tup![team]),
                "{team} missing from Q1: {answers:?}"
            );
        }
        // ARG lost three finals but is South American.
        assert!(!answers.contains(&tup!["ARG"]));
    }

    #[test]
    fn q3_excludes_asian_teams() {
        let db = generate_soccer(SoccerConfig::default());
        let q3 = soccer_query(db.schema(), 3);
        let answers = answer_set(&q3, &db);
        for t in &answers {
            let country = t.values()[0].as_text().unwrap();
            assert!(
                !["JPN", "KOR", "KSA", "IRN", "CHN", "AUS"].contains(&country),
                "Asian team {country} in Q3"
            );
        }
        assert!(answers.contains(&tup!["GER"]));
    }

    #[test]
    fn q2_same_continent_rematches() {
        let db = generate_soccer(SoccerConfig::default());
        let q2 = soccer_query(db.schema(), 2);
        let answers = answer_set(&q2, &db);
        // the planted rivalry: ESP beat POR in 2010 and 2014, both EU
        assert!(answers.contains(&tup!["ESP", "POR"]), "{answers:?}");
    }

    #[test]
    #[should_panic(expected = "Q1..Q5")]
    fn out_of_range_index_panics() {
        let db = generate_soccer(SoccerConfig::default());
        let _ = soccer_query(db.schema(), 6);
    }

    #[test]
    fn dbgroup_queries_parse_and_have_answers() {
        let db = generate_dbgroup(DbGroupConfig::default());
        let queries = dbgroup_queries(db.schema());
        assert_eq!(queries.len(), 4);
        for q in &queries {
            let answers = answer_set(q, &db);
            assert!(
                !answers.is_empty(),
                "{} has no answers on the ground truth",
                q.name()
            );
        }
    }

    #[test]
    fn dq3_only_returns_students() {
        let db = generate_dbgroup(DbGroupConfig::default());
        let q = dbgroup_queries(db.schema()).remove(2);
        let members = db.schema().rel_id("Members").unwrap();
        let roles: std::collections::HashMap<qoco_data::Value, String> = db
            .relation(members)
            .iter()
            .map(|t| {
                (
                    t.values()[0].clone(),
                    t.values()[1].as_text().unwrap().to_string(),
                )
            })
            .collect();
        for t in answer_set(&q, &db) {
            let role = &roles[&t.values()[0]];
            assert!(role == "PhD" || role == "MSc", "non-student {role} in DQ3");
        }
    }
}
