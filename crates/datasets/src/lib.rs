//! # qoco-datasets — the evaluation datasets of the paper, synthesized
//!
//! The paper evaluates QOCO on two real databases: a World-Cup Soccer
//! database (~5000 tuples scraped from sports sites, cleaned against FIFA
//! official data to obtain the ground truth) and the authors' DBGroup
//! database (~2000 tuples of group members, publications and activities).
//! Neither is distributed, so this crate regenerates faithful synthetic
//! equivalents (see DESIGN.md §5 for the substitution argument):
//!
//! * [`soccer`] — a deterministic World-Cup generator seeded with the real
//!   final results 1930–2014 plus generated group/knockout games, squads,
//!   goals and club affiliations (~5000 tuples);
//! * [`dbgroup`] — a research-group database with members, publications,
//!   talks, travels and grants (~2000 tuples);
//! * [`noise`] — controlled noise: the cleanliness/skewness parameters of
//!   Section 7.2, plus *query-aware planting* of exactly `k` wrong or
//!   missing answers (what Figures 3d–3f vary);
//! * [`queries`] — the five soccer trivia queries Q1–Q5 and the four
//!   DBGroup report queries of Section 7.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbgroup;
pub mod noise;
pub mod queries;
pub mod soccer;

pub use dbgroup::{generate_dbgroup, DbGroupConfig};
pub use noise::{
    inject_noise, plant_missing_answers, plant_mixed, plant_wrong_answers,
    plant_wrong_answers_excluding, NoiseSpec, PlantOutcome,
};
pub use queries::{dbgroup_queries, soccer_queries, soccer_query};
pub use soccer::{generate_soccer, soccer_schema, SoccerConfig};
