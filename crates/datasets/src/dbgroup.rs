//! The DBGroup database (~2000 tuples) of Section 7.1.
//!
//! A research-group records database: members and their roles, grants and
//! the topics they cover, publications (one row per author), conference
//! travel with its sponsor, and invited talks. The paper's four grant-report
//! queries (keynotes/tutorials on ERC topics, current ERC-funded members,
//! ERC-sponsored student travel, recent crowdsourcing papers) run over it.
//!
//! Time windows ("in the past 30 months") are materialized as a
//! `period ∈ {recent, old}` attribute, since the view language has no
//! arithmetic comparisons — the same modelling the paper's form-based
//! report generator would do when preparing the view.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qoco_data::{Database, Schema, Tuple};

/// Configuration for the DBGroup generator.
#[derive(Debug, Clone, Copy)]
pub struct DbGroupConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of group members.
    pub members: usize,
    /// Number of publications.
    pub publications: usize,
    /// Number of conference travels.
    pub travels: usize,
    /// Number of invited talks.
    pub talks: usize,
}

impl Default for DbGroupConfig {
    fn default() -> Self {
        DbGroupConfig {
            seed: 42,
            members: 50,
            publications: 650,
            travels: 220,
            talks: 120,
        }
    }
}

const ROLES: [&str; 4] = ["Faculty", "Postdoc", "PhD", "MSc"];
const TOPICS: [&str; 8] = [
    "crowdsourcing",
    "data-cleaning",
    "provenance",
    "query-optimization",
    "data-integration",
    "streams",
    "privacy",
    "graph-data",
];
/// Topics covered by the ERC grant (MoDaS, per the acknowledgements).
const ERC_TOPICS: [&str; 3] = ["crowdsourcing", "data-cleaning", "provenance"];
const GRANTS: [&str; 3] = ["ERC", "ISF", "BSF"];
const CONFS: [&str; 8] = [
    "SIGMOD", "VLDB", "ICDE", "EDBT", "PODS", "ICDT", "WWW", "KDD",
];
const KINDS: [&str; 3] = ["Keynote", "Tutorial", "Regular"];
const PERIODS: [&str; 2] = ["recent", "old"];

/// The DBGroup schema.
pub fn dbgroup_schema() -> Arc<Schema> {
    Schema::builder()
        .relation("Members", &["name", "role", "status"])
        .relation("Funding", &["member", "grant"])
        .relation("GrantTopics", &["grant", "topic"])
        .relation("Publications", &["title", "author", "period", "topic"])
        .relation("Travels", &["member", "conf", "period", "sponsor"])
        .relation("Talks", &["member", "event", "period", "kind", "topic"])
        .build()
        .expect("static schema is valid")
}

/// Generate the ground-truth DBGroup database.
pub fn generate_dbgroup(config: DbGroupConfig) -> Database {
    let schema = dbgroup_schema();
    let mut db = Database::empty(schema);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // grant topic coverage
    for t in ERC_TOPICS {
        db.insert_named("GrantTopics", Tuple::new(vec!["ERC".into(), t.into()]))
            .unwrap();
    }
    for t in ["query-optimization", "privacy"] {
        db.insert_named("GrantTopics", Tuple::new(vec!["ISF".into(), t.into()]))
            .unwrap();
    }
    db.insert_named(
        "GrantTopics",
        Tuple::new(vec!["BSF".into(), "graph-data".into()]),
    )
    .unwrap();

    // members
    let mut member_names = Vec::with_capacity(config.members);
    for i in 0..config.members {
        let name = format!("member-{i:02}");
        let role = ROLES[rng.random_range(0..ROLES.len())];
        let status = if rng.random_range(0..3) == 0 {
            "alumni"
        } else {
            "current"
        };
        db.insert_named(
            "Members",
            Tuple::new(vec![name.as_str().into(), role.into(), status.into()]),
        )
        .unwrap();
        // funding: each member holds 1–2 grants
        let g1 = GRANTS[rng.random_range(0..GRANTS.len())];
        db.insert_named("Funding", Tuple::new(vec![name.as_str().into(), g1.into()]))
            .unwrap();
        if rng.random::<bool>() {
            let g2 = GRANTS[rng.random_range(0..GRANTS.len())];
            db.insert_named("Funding", Tuple::new(vec![name.as_str().into(), g2.into()]))
                .unwrap();
        }
        member_names.push(name);
    }

    // publications: one row per (title, author); 1–3 authors each
    for i in 0..config.publications {
        let title = format!("paper-{i:03}");
        let topic = TOPICS[rng.random_range(0..TOPICS.len())];
        let period = PERIODS[rng.random_range(0..PERIODS.len())];
        let nauthors = 1 + rng.random_range(0..3);
        let mut chosen: Vec<&String> = Vec::new();
        while chosen.len() < nauthors {
            let m = &member_names[rng.random_range(0..member_names.len())];
            if !chosen.contains(&m) {
                chosen.push(m);
            }
        }
        for author in chosen {
            db.insert_named(
                "Publications",
                Tuple::new(vec![
                    title.as_str().into(),
                    author.as_str().into(),
                    period.into(),
                    topic.into(),
                ]),
            )
            .unwrap();
        }
    }

    // travels
    for _ in 0..config.travels {
        let m = &member_names[rng.random_range(0..member_names.len())];
        let conf = CONFS[rng.random_range(0..CONFS.len())];
        let period = PERIODS[rng.random_range(0..PERIODS.len())];
        let sponsor = GRANTS[rng.random_range(0..GRANTS.len())];
        db.insert_named(
            "Travels",
            Tuple::new(vec![
                m.as_str().into(),
                conf.into(),
                period.into(),
                sponsor.into(),
            ]),
        )
        .unwrap();
    }

    // talks
    for _ in 0..config.talks {
        let m = &member_names[rng.random_range(0..member_names.len())];
        let event = CONFS[rng.random_range(0..CONFS.len())];
        let period = PERIODS[rng.random_range(0..PERIODS.len())];
        let kind = KINDS[rng.random_range(0..KINDS.len())];
        let topic = TOPICS[rng.random_range(0..TOPICS.len())];
        db.insert_named(
            "Talks",
            Tuple::new(vec![
                m.as_str().into(),
                event.into(),
                period.into(),
                kind.into(),
                topic.into(),
            ]),
        )
        .unwrap();
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use qoco_data::Value;

    fn db() -> Database {
        generate_dbgroup(DbGroupConfig::default())
    }

    #[test]
    fn size_is_about_two_thousand_tuples() {
        let n = db().len();
        assert!(
            (1200..=2800).contains(&n),
            "paper's DBGroup is ~2000 tuples; generated {n}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(db().sorted_facts(), db().sorted_facts());
    }

    #[test]
    fn members_have_funding() {
        let d = db();
        let members = d.schema().rel_id("Members").unwrap();
        let funding = d.schema().rel_id("Funding").unwrap();
        let funded: std::collections::HashSet<Value> = d
            .relation(funding)
            .iter()
            .map(|t| t.values()[0].clone())
            .collect();
        for m in d.relation(members).iter() {
            assert!(funded.contains(&m.values()[0]), "unfunded member {m}");
        }
    }

    #[test]
    fn erc_topics_are_declared() {
        let d = db();
        let gt = d.schema().rel_id("GrantTopics").unwrap();
        let erc_rows = d
            .relation(gt)
            .iter()
            .filter(|t| t.values()[0] == Value::text("ERC"))
            .count();
        assert_eq!(erc_rows, 3);
    }

    #[test]
    fn publications_reference_members() {
        let d = db();
        let members = d.schema().rel_id("Members").unwrap();
        let pubs = d.schema().rel_id("Publications").unwrap();
        let names: std::collections::HashSet<Value> = d
            .relation(members)
            .iter()
            .map(|t| t.values()[0].clone())
            .collect();
        for p in d.relation(pubs).iter() {
            assert!(names.contains(&p.values()[1]), "unknown author in {p}");
        }
    }

    #[test]
    fn periods_are_recent_or_old() {
        let d = db();
        for rel_name in ["Publications", "Travels", "Talks"] {
            let rel = d.schema().rel_id(rel_name).unwrap();
            let idx = d
                .schema()
                .relation(rel)
                .unwrap()
                .attr_index("period")
                .unwrap();
            for t in d.relation(rel).iter() {
                let p = t.values()[idx].as_text().unwrap();
                assert!(p == "recent" || p == "old");
            }
        }
    }
}
