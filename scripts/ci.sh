#!/usr/bin/env bash
# The full local CI gate: build, tests, lints, formatting, and a telemetry
# smoke-run. Run from anywhere; operates on the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (tier-1) =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== RAYON_NUM_THREADS=1 cargo test -q --workspace (sequential eval) =="
RAYON_NUM_THREADS=1 cargo test -q --workspace

echo "== cargo bench --workspace --no-run =="
cargo bench --workspace --no-run

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== telemetry smoke-run =="
# the quickstart example must run clean...
cargo run --release --example quickstart > /dev/null
# ...and the same Figure 1 scenario through qoco-cli --telemetry must emit
# a non-trivial JSONL trace covering the cleaning phases
work="$(mktemp -d -t qoco-ci-XXXXXX)"
trap 'rm -rf "$work"' EXIT
trace="$work/trace.jsonl"
mkdir -p "$work/dirty" "$work/ground"

printf 'date\twinner\trunner_up\tstage\tresult\n11.07.10\tESP\tNED\tFinal\t1:0\n12.07.98\tESP\tNED\tFinal\t4:2\n13.07.14\tGER\tARG\tFinal\t1:0\n08.07.90\tGER\tARG\tFinal\t1:0\n' > "$work/dirty/Games.tsv"
printf 'country\tcontinent\nESP\tEU\nGER\tEU\n' > "$work/dirty/Teams.tsv"
printf 'date\twinner\trunner_up\tstage\tresult\n11.07.10\tESP\tNED\tFinal\t1:0\n13.07.14\tGER\tARG\tFinal\t1:0\n08.07.90\tGER\tARG\tFinal\t1:0\n' > "$work/ground/Games.tsv"
printf 'country\tcontinent\nESP\tEU\nGER\tEU\n' > "$work/ground/Teams.tsv"

printf '%s\n' \
  'relation Games date winner runner_up stage result' \
  'relation Teams country continent' \
  "load $work/dirty" \
  "ground $work/ground" \
  'query Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2.' \
  'clean Q1 qoco provenance' \
  'quit' \
  | ./target/release/qoco-cli --telemetry "$trace" > /dev/null

for needle in clean.session clean.deletion_phase clean.insertion_phase eval.assignments crowd.questions_asked; do
  grep -q "$needle" "$trace" || { echo "telemetry smoke-run: missing $needle in trace" >&2; exit 1; }
done
echo "telemetry trace OK ($(wc -l < "$trace") JSONL lines)"

echo "== all CI gates passed =="
