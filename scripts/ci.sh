#!/usr/bin/env bash
# The full local CI gate: build, tests, lints, formatting, and a telemetry
# smoke-run. Run from anywhere; operates on the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (tier-1) =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== RAYON_NUM_THREADS=1 cargo test -q --workspace (sequential eval) =="
RAYON_NUM_THREADS=1 cargo test -q --workspace
# the view/answer-set equivalence property must hold under a sequential
# pool too (its threads=2/8 cases then exercise the fallback path)
RAYON_NUM_THREADS=1 cargo test -q -p qoco-engine --test view_property

echo "== cargo bench --workspace --no-run =="
cargo bench --workspace --no-run

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== telemetry smoke-run =="
# the quickstart example must run clean...
cargo run --release --example quickstart > /dev/null
# ...and the same Figure 1 scenario through qoco-cli must emit both a
# non-trivial JSONL export covering the cleaning phases and a
# Perfetto-loadable Chrome trace showing the parallel eval fan-out
work="$(mktemp -d -t qoco-ci-XXXXXX)"
trap 'rm -rf "$work"' EXIT
trace="$work/trace.jsonl"
chrome_trace="$work/trace.json"
mkdir -p "$work/dirty" "$work/ground"

printf 'date\twinner\trunner_up\tstage\tresult\n11.07.10\tESP\tNED\tFinal\t1:0\n12.07.98\tESP\tNED\tFinal\t4:2\n13.07.14\tGER\tARG\tFinal\t1:0\n08.07.90\tGER\tARG\tFinal\t1:0\n' > "$work/dirty/Games.tsv"
printf 'country\tcontinent\nESP\tEU\nGER\tEU\n' > "$work/dirty/Teams.tsv"
printf 'date\twinner\trunner_up\tstage\tresult\n11.07.10\tESP\tNED\tFinal\t1:0\n13.07.14\tGER\tARG\tFinal\t1:0\n08.07.90\tGER\tARG\tFinal\t1:0\n' > "$work/ground/Games.tsv"
printf 'country\tcontinent\nESP\tEU\nGER\tEU\n' > "$work/ground/Teams.tsv"

# Pad the fixture (identically in dirty and ground, so the cleaning outcome
# is untouched) until the planner's first atom has enough top-level
# candidates to clear the engine's parallel threshold:
#  - 16 extra EU teams → 18 Teams candidates;
#  - 16 extra Semi-stage games keep Games the larger relation;
#  - one Final win per fake team (single final each, so the d1 != d2 pair
#    never forms and no new Q1 answers appear) keeps the "Final" posting
#    *longer* than the EU posting, so the cardinality-ordered planner
#    (posting-list estimates, smallest first) still roots at the Teams
#    atom with all 18 candidates.
for i in $(seq -w 1 16); do
  printf 'T%s\tEU\n' "$i" | tee -a "$work/dirty/Teams.tsv" >> "$work/ground/Teams.tsv"
  printf '01.01.%s\tT%s\tT%s\tSemi\t1:0\n' "$i" "$i" "$i" \
    | tee -a "$work/dirty/Games.tsv" >> "$work/ground/Games.tsv"
  printf '02.02.%s\tT%s\tT%s\tFinal\t1:0\n' "$i" "$i" "$i" \
    | tee -a "$work/dirty/Games.tsv" >> "$work/ground/Games.tsv"
done

printf '%s\n' \
  'relation Games date winner runner_up stage result' \
  'relation Teams country continent' \
  "load $work/dirty" \
  "ground $work/ground" \
  'query Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2.' \
  'clean Q1 qoco provenance' \
  'quit' \
  | RAYON_NUM_THREADS=2 ./target/release/qoco-cli --telemetry "$trace" --trace "$chrome_trace" > /dev/null

for needle in clean.session clean.deletion_phase clean.insertion_phase eval.assignments eval.par_chunk crowd.questions_asked; do
  grep -q "$needle" "$trace" || { echo "telemetry smoke-run: missing $needle in trace" >&2; exit 1; }
done
echo "telemetry trace OK ($(wc -l < "$trace") JSONL lines)"

# the Chrome trace must parse as valid trace-event JSON with spans on at
# least two thread tracks (coordinator + parallel eval workers)
cargo run -q --release -p qoco-bench --bin qoco-bench -- \
  validate-trace "$chrome_trace" --min-tracks 2 \
  --require-span clean.session --require-span eval.par_chunk

echo "== chaos / crash-recovery smoke-run =="
# the same Figure 1 scenario again, now under injected crowd faults and a
# mid-session kill; emits the session script with a parameterised save dir
chaos_script() {
  printf '%s\n' \
    'relation Games date winner runner_up stage result' \
    'relation Teams country continent' \
    "load $work/dirty" \
    "ground $work/ground" \
    'query Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2.' \
    'clean Q1 qoco provenance' \
    "save $1" \
    'quit'
}

# faults off: the uninterrupted baseline the recovery run must reproduce
chaos_script "$work/clean-base" | ./target/release/qoco-cli > /dev/null

# a permanently dropped expert must yield an explicit partial report
# (exit 0 with an unresolved section), never a panic
chaos_out="$work/chaos.out"
chaos_script "$work/clean-chaos" | ./target/release/qoco-cli --faults drop@2 > "$chaos_out"
grep -q "PARTIAL REPORT" "$chaos_out" || { echo "chaos run: no partial report" >&2; exit 1; }
grep -q "unresolved" "$chaos_out" || { echo "chaos run: no unresolved section" >&2; exit 1; }
echo "fault injection degrades to a partial report: OK"

# kill the session after its 4th crowd answer with a write-ahead journal…
journal="$work/session.journal"
code=0
chaos_script "$work/clean-killed" \
  | ./target/release/qoco-cli --journal "$journal" --kill-after 4 > /dev/null 2>&1 || code=$?
if [ "$code" -ne 86 ]; then
  echo "kill switch: expected exit 86, got $code" >&2
  exit 1
fi
# …then resume from the journal: zero replay divergences and a final
# database identical to the uninterrupted baseline
resume_out="$work/resume.out"
chaos_script "$work/clean-resumed" | ./target/release/qoco-cli --resume "$journal" > "$resume_out"
grep -q "0 divergence(s)" "$resume_out" || { echo "resume diverged" >&2; cat "$resume_out" >&2; exit 1; }
diff -r "$work/clean-base" "$work/clean-resumed" \
  || { echo "resumed database differs from the uninterrupted run" >&2; exit 1; }
echo "kill/resume reproduces the uninterrupted session: OK"

echo "== decision provenance / explain smoke-run =="
# the Figure 1 fixture again, extended with one wrong singleton-witness
# tuple (BRA marked EU in dirty only) so both provenance shapes appear:
# a greedy frequency ranking (multi-fact witnesses behind Q1) and a fired
# Theorem 4.5 certificate (the singleton behind Q2)
cp -r "$work/dirty" "$work/dirty-prov"
printf 'BRA\tEU\n' >> "$work/dirty-prov/Teams.tsv"
prov_script() {
  printf '%s\n' \
    'relation Games date winner runner_up stage result' \
    'relation Teams country continent' \
    "load $work/dirty-prov" \
    "ground $work/ground" \
    'query Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2.' \
    'query Q2(x) :- Teams(x, "EU")' \
    'clean Q1 qoco provenance' \
    'clean Q2 qoco provenance' \
    'quit'
}

# fresh run: decision JSONL + tagged journal
prov_script | ./target/release/qoco-cli \
  --telemetry "$work/decisions.jsonl" --journal "$work/prov.journal" > /dev/null
cargo run -q --release -p qoco-bench --bin qoco-bench -- \
  validate-decisions "$work/decisions.jsonl" \
  --require-kind deletion.plan --require-kind deletion.verify_fact \
  --require-kind deletion.certificate --require-kind clean.verify_answer \
  --require-kind clean.complete_result

# the audit report must name the greedy ranking and the fired certificate
./target/release/qoco-cli explain "$work/decisions.jsonl" > "$work/explain-fresh.txt"
grep -q "ranking: " "$work/explain-fresh.txt" \
  || { echo "explain: no frequency ranking" >&2; exit 1; }
grep -q "theorem-4.5 certificate fired" "$work/explain-fresh.txt" \
  || { echo "explain: no fired theorem-4.5 certificate" >&2; exit 1; }
grep -q "^budget: " "$work/explain-fresh.txt" \
  || { echo "explain: no budget summary" >&2; exit 1; }
# every journaled question carries its decision tag
[ "$(grep -c $'\td=' "$work/prov.journal")" -eq "$(wc -l < "$work/prov.journal")" ] \
  || { echo "journal: untagged records" >&2; exit 1; }
./target/release/qoco-cli explain "$work/prov.journal" > "$work/explain-journal.txt"
grep -q "tagged with decision ids" "$work/explain-journal.txt" \
  || { echo "journal explain failed" >&2; exit 1; }

# kill the same session mid-run, resume it, and require a byte-identical
# audit report — --resume replays provenance losslessly
code=0
prov_script | ./target/release/qoco-cli \
  --journal "$work/prov-killed.journal" --kill-after 3 > /dev/null 2>&1 || code=$?
[ "$code" -eq 86 ] || { echo "provenance kill: expected exit 86, got $code" >&2; exit 1; }
prov_script | ./target/release/qoco-cli \
  --telemetry "$work/decisions-resumed.jsonl" --resume "$work/prov-killed.journal" > /dev/null
./target/release/qoco-cli explain "$work/decisions-resumed.jsonl" > "$work/explain-resumed.txt"
diff "$work/explain-fresh.txt" "$work/explain-resumed.txt" \
  || { echo "explain: fresh and resumed reports differ" >&2; exit 1; }
echo "decision provenance explains fresh and resumed sessions identically: OK"

echo "== profiling smoke-run =="
# the padded Figure 1 session again, now under the sampling profiler: the
# flamegraph must be structurally valid and must contain the cleaning
# phases as frames
flame="$work/session.svg"
printf '%s\n' \
  'relation Games date winner runner_up stage result' \
  'relation Teams country continent' \
  "load $work/dirty" \
  "ground $work/ground" \
  'query Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2.' \
  'clean Q1 qoco provenance' \
  'quit' \
  | RAYON_NUM_THREADS=2 ./target/release/qoco-cli --profile "$flame" > /dev/null
cargo run -q --release -p qoco-bench --bin qoco-bench -- \
  validate-flamegraph "$flame" --require-frame clean.session
# folded stacks of one sweep cell must name the eval phases, and the
# folded → diff pipeline must round-trip
folded="$work/cell.folded"
cargo run -q --release -p qoco-bench --bin qoco-bench -- \
  profile dense/500/current/2 --out "$folded" --budget-ms 300
grep -q "eval.assignments" "$folded" \
  || { echo "profile: no eval.assignments frame in $folded" >&2; exit 1; }
cargo run -q --release -p qoco-bench --bin qoco-bench -- \
  profile --diff "$folded" "$folded" | grep -q "profiles agree" \
  || { echo "profile --diff: self-diff must agree" >&2; exit 1; }
echo "profiling smoke-run: OK"

echo "== qoco-watch smoke-run =="
# SLO rules for the chaos session: the crowd-error rule is deliberately
# tripped by the injected timeout burst (two faulted asks land on one
# early tick → rate 2/s > 0.5/s), then resolves once the window slides
# past the burst; the flood rule never trips.
watch_rules="$work/watch.rules"
printf '%s\n' \
  'rule crowd_errors: rate(crowd.faults, 1s) > 0.5/s => warn' \
  'rule question_flood: rate(crowd.questions_asked, 10s) > 1000/s => info' \
  > "$watch_rules"

# fresh watched chaos run: logical ticks, series exported as JSONL samples
watch_series="$work/watch.jsonl"
watch_out="$work/watch.out"
chaos_script "$work/clean-watched" | ./target/release/qoco-cli \
  --telemetry "$watch_series" --watch-rules "$watch_rules" \
  --faults 'burst@2+2=timeout' > "$watch_out" 2> "$work/watch.err"
grep -q '^alerts: ' "$watch_out" \
  || { echo "watch: no alert summary in the cleaning report" >&2; exit 1; }
grep -q '"type":"sample"' "$watch_series" \
  || { echo "watch: no sample series in the telemetry export" >&2; exit 1; }
grep -q '"name":"alert.firing"' "$watch_series" \
  || { echo "watch: no alert.firing event in the telemetry export" >&2; exit 1; }

# offline replay re-derives the alert timeline from the exported series and
# must see the burst rule fire AND resolve
cargo run -q --release -p qoco-bench --bin qoco-bench -- \
  watch-replay "$watch_series" --rules "$watch_rules" \
  --expect-fire crowd_errors --expect-resolve crowd_errors \
  > "$work/replay-fresh.txt"

# determinism: kill the same watched session mid-run, resume it, and the
# replayed alert timeline must be byte-identical to the fresh run's
code=0
chaos_script "$work/clean-wkilled" | ./target/release/qoco-cli \
  --journal "$work/watch.journal" --watch-rules "$watch_rules" \
  --faults 'burst@2+2=timeout' --kill-after 4 > /dev/null 2>&1 || code=$?
[ "$code" -eq 86 ] || { echo "watch kill: expected exit 86, got $code" >&2; exit 1; }
chaos_script "$work/clean-wresumed" | ./target/release/qoco-cli \
  --telemetry "$work/watch-resumed.jsonl" --resume "$work/watch.journal" \
  --watch-rules "$watch_rules" --faults 'burst@2+2=timeout' > /dev/null
cargo run -q --release -p qoco-bench --bin qoco-bench -- \
  watch-replay "$work/watch-resumed.jsonl" --rules "$watch_rules" \
  --expect-fire crowd_errors --expect-resolve crowd_errors \
  > "$work/replay-resumed.txt"
diff "$work/replay-fresh.txt" "$work/replay-resumed.txt" \
  || { echo "watch-replay: fresh and resumed alert timelines differ" >&2; exit 1; }
echo "watch-replay reproduces the alert timeline across kill/resume: OK"

# live surfaces: hold a watched session open on a FIFO and curl the
# dashboard, the alert state and the timeseries API on an ephemeral port
fifo="$work/cli.fifo"
mkfifo "$fifo"
./target/release/qoco-cli --metrics-port 0 --watch-rules "$watch_rules" \
  < "$fifo" > "$work/watch-live.out" 2> "$work/watch-live.err" &
cli_pid=$!
trap 'kill "$cli_pid" 2>/dev/null || true; rm -rf "$work"' EXIT
exec 3> "$fifo"
printf '%s\n' \
  'relation Games date winner runner_up stage result' \
  'relation Teams country continent' \
  "load $work/dirty" \
  "ground $work/ground" \
  'query Q1(x) :- Games(d1, x, y, "Final", u1), Games(d2, x, z, "Final", u2), Teams(x, "EU"), d1 != d2.' \
  'clean Q1 qoco provenance' >&3
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's|serving metrics on http://\([^/]*\)/metrics|\1|p' "$work/watch-live.err")"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "watch live: metrics server never announced its port" >&2; exit 1; }
series_json=""
for _ in $(seq 1 100); do
  series_json="$(curl -sf "http://$addr/api/timeseries?metric=crowd.questions_asked&window=30s" || true)"
  case "$series_json" in *'"samples"'*) break ;; esac
  sleep 0.1
done
case "$series_json" in
  *'"metric":"crowd.questions_asked"'*) ;;
  *) echo "watch live: /api/timeseries returned no series: $series_json" >&2; exit 1 ;;
esac
curl -sf "http://$addr/dashboard" | grep -q '<svg' \
  || { echo "watch live: /dashboard has no sparklines" >&2; exit 1; }
curl -sf "http://$addr/alerts" | grep -q '"crowd_errors"' \
  || { echo "watch live: /alerts does not list the rules" >&2; exit 1; }
printf 'quit\n' >&3
exec 3>&-
wait "$cli_pid"
trap 'rm -rf "$work"' EXIT
echo "live dashboard, alerts and timeseries API: OK"

echo "== perf regression gate (quick) =="
gate_quick="$work/gate-quick.out"
cargo run -q --release -p qoco-bench --bin qoco-bench -- regressions --check --quick \
  | tee "$gate_quick"
# the quick gate must cover the incremental-cleaning cells, not just eval
for cell in cleaning_sweep/1000/view/1 cleaning_sweep/1000/fullre/1; do
  grep -q "$cell" "$gate_quick" \
    || { echo "quick gate did not compare $cell" >&2; exit 1; }
done
# ...and the gate must actually trip when a cell regresses, with the
# attribution re-run naming the injected phase as the regressed frame
gate_out="$work/gate.out"
if cargo run -q --release -p qoco-bench --bin qoco-bench -- \
    regressions --check --quick --attribute \
    --inject-slowdown selective/1000/current/1=3.0 > "$gate_out" 2>&1; then
  echo "regression gate failed to flag an injected 3x slowdown" >&2
  exit 1
fi
grep -q "inject.slowdown" "$gate_out" \
  || { echo "gate attribution did not name inject.slowdown:" >&2; cat "$gate_out" >&2; exit 1; }
echo "regression gate trips on injected slowdown and names the phase: OK"

echo "== qoco-serve smoke-run (kill -9 / rehydrate) =="
# the serve-replay correctness gate first: every journal prefix of the
# Figure 1 session must rehydrate and finish byte-identically in-process
cargo run -q --release -p qoco-bench --bin qoco-bench -- validate-sessions

# now the same guarantee across real processes: drive a session over the
# HTTP API, kill -9 the server mid-session, restart it over the same
# store, finish, and diff the report against an uninterrupted run's
serve_store="$work/serve-store"
serve_log="$work/serve.log"
# each incarnation gets its own access-log/trace files: both are created
# with truncate, so reusing paths across the restart would erase the first
# incarnation's artifacts that validate-requests needs
./target/release/qoco-serve serve --addr 127.0.0.1:0 --store "$serve_store" \
  --access-log "$work/serve-access-1.jsonl" --telemetry "$work/serve-tele-1.jsonl" \
  > "$serve_log" 2>/dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$work"' EXIT
saddr=""
for _ in $(seq 1 100); do
  saddr="$(sed -n 's/^listening on //p' "$serve_log")"
  [ -n "$saddr" ] && break
  sleep 0.1
done
[ -n "$saddr" ] || { echo "qoco-serve never announced its port" >&2; exit 1; }

report_text() { sed -n 's/.*"report_text":"\(.*\)"}$/\1/p' "$1"; }

# uninterrupted baseline: s1, crowd played by the mirror oracle helper
curl -sf -X POST "http://$saddr/sessions" -d '{"example":"figure1"}' > /dev/null
./target/release/qoco-serve oracle --addr "$saddr" --session s1 > /dev/null
curl -sf "http://$saddr/sessions/s1/report" > "$work/serve-base.json"
grep -q '"partial":false' "$work/serve-base.json" \
  || { echo "serve: baseline session ended partial" >&2; exit 1; }

# chaos session: s2 gets one answer — submitted under a caller-chosen
# request id, which the server must echo — then the server dies mid-session
curl -sf -X POST "http://$saddr/sessions" -d '{"example":"figure1"}' > /dev/null
curl -sf -D "$work/serve-answer-headers.txt" \
  -X POST "http://$saddr/sessions/s2/answers" \
  -H 'X-Request-Id: ci-audit-7' \
  -d '{"epoch":1,"answers":[{"seq":1,"bool":false}]}' > /dev/null
grep -qi '^x-request-id: ci-audit-7' "$work/serve-answer-headers.txt" \
  || { echo "serve: X-Request-Id was not echoed on the response" >&2; exit 1; }
# wait for the request's provenance to reach disk — the access line and the
# write-through span land just after the response — then crash for real
for _ in $(seq 1 100); do
  grep -q 'ci-audit-7' "$work/serve-access-1.jsonl" 2>/dev/null \
    && grep -q 'ci-audit-7' "$work/serve-tele-1.jsonl" 2>/dev/null && break
  sleep 0.1
done
grep -q 'ci-audit-7' "$work/serve-access-1.jsonl" \
  || { echo "serve: ci-audit-7 never reached the access log" >&2; exit 1; }
grep -q 'ci-audit-7' "$work/serve-tele-1.jsonl" \
  || { echo "serve: ci-audit-7 never reached the exported trace" >&2; exit 1; }
sleep 0.2
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
# the id was journaled durably before the crash, on the line it caused
grep -q 'r=ci-audit-7' "$serve_store/s2/session.journal" \
  || { echo "serve: journal line lacks r=ci-audit-7 provenance" >&2; exit 1; }

: > "$serve_log"
./target/release/qoco-serve serve --addr 127.0.0.1:0 --store "$serve_store" \
  --access-log "$work/serve-access-2.jsonl" --telemetry "$work/serve-tele-2.jsonl" \
  > "$serve_log" 2>/dev/null &
serve_pid=$!
saddr=""
for _ in $(seq 1 100); do
  saddr="$(sed -n 's/^listening on //p' "$serve_log")"
  [ -n "$saddr" ] && break
  sleep 0.1
done
[ -n "$saddr" ] || { echo "qoco-serve never came back after kill -9" >&2; exit 1; }
grep -q "rehydrated 2 session(s)" "$serve_log" \
  || { echo "serve: restart did not rehydrate both sessions" >&2; exit 1; }
# /health republishes the parked-session gauges after rehydration
curl -sf "http://$saddr/health" | grep -q '"sessions":{"active":2,"parked":1}' \
  || { echo "serve: /health gauges wrong after rehydration" >&2; exit 1; }
# a pre-crash submitter retrying under the old epoch is acked, not applied
curl -sf -X POST "http://$saddr/sessions/s2/answers" \
  -d '{"epoch":1,"answers":[{"seq":1,"bool":false}]}' \
  | grep -q '"status":"stale"' \
  || { echo "serve: stale-epoch retry was not acknowledged as stale" >&2; exit 1; }
# finish the rehydrated session — the mirror oracle tags every request it
# makes with a fixed id — and compare reports byte for byte
./target/release/qoco-serve oracle --addr "$saddr" --session s2 \
  --request-id ci-audit-8 > /dev/null
curl -sf "http://$saddr/sessions/s2/report" > "$work/serve-resumed.json"
diff <(report_text "$work/serve-base.json") <(report_text "$work/serve-resumed.json") \
  || { echo "serve: killed+rehydrated report differs from uninterrupted run" >&2; exit 1; }

echo "== request provenance: one id from the socket to the journal =="
# the resumed answers were submitted under ci-audit-8; the id must appear
# in the post-restart journal lines they caused
grep -q 'r=ci-audit-8' "$serve_store/s2/session.journal" \
  || { echo "serve: resumed answers did not journal r=ci-audit-8" >&2; exit 1; }
# one sentinel request; once its lines land, everything before it has too
# (the access writer and the trace both write in completion order)
curl -sf -H 'X-Request-Id: ci-sentinel-9' "http://$saddr/health" > /dev/null
for _ in $(seq 1 100); do
  grep -q 'ci-sentinel-9' "$work/serve-access-2.jsonl" 2>/dev/null \
    && grep -q 'ci-sentinel-9' "$work/serve-tele-2.jsonl" 2>/dev/null && break
  sleep 0.1
done
sleep 0.2
grep -q 'ci-audit-8' "$work/serve-access-2.jsonl" \
  || { echo "serve: ci-audit-8 missing from the access log" >&2; exit 1; }
grep -q 'ci-audit-8' "$work/serve-tele-2.jsonl" \
  || { echo "serve: ci-audit-8 missing from the exported trace" >&2; exit 1; }
# the in-flight inspector answers while the server is live
curl -sf "http://$saddr/api/requests" | grep -q '"requests":' \
  || { echo "serve: /api/requests returned no inspector body" >&2; exit 1; }
# qoco-cli explain answers "which request caused this crowd question"
./target/release/qoco-cli explain "$serve_store/s2/session.journal" \
  > "$work/serve-explain.txt"
grep -q 'with request ids' "$work/serve-explain.txt" \
  || { echo "serve explain: no request-id tally in the header" >&2; exit 1; }
grep -q '\[req=ci-audit-8\]' "$work/serve-explain.txt" \
  || { echo "serve explain: no [req=ci-audit-8] provenance tag" >&2; exit 1; }
# the cross-artifact gate, over BOTH incarnations' artifacts at once
cargo run -q --release -p qoco-bench --bin qoco-bench -- validate-requests \
  --access-log "$work/serve-access-1.jsonl" --access-log "$work/serve-access-2.jsonl" \
  --telemetry "$work/serve-tele-1.jsonl" --telemetry "$work/serve-tele-2.jsonl" \
  --journal "$serve_store/s1/session.journal" \
  --journal "$serve_store/s2/session.journal" \
  --require-request ci-audit-7 --require-request ci-audit-8 \
  > "$work/serve-validate.out"
grep -q 'cross-checked' "$work/serve-validate.out" \
  || { echo "validate-requests printed no summary:" >&2; cat "$work/serve-validate.out" >&2; exit 1; }
# ...and the strict parse must reject a torn access-log line
sed '1s/.\{10\}$//' "$work/serve-access-2.jsonl" > "$work/serve-access-corrupt.jsonl"
if cargo run -q --release -p qoco-bench --bin qoco-bench -- validate-requests \
    --access-log "$work/serve-access-corrupt.jsonl" \
    > "$work/serve-corrupt.out" 2>&1; then
  echo "validate-requests accepted a corrupted access log" >&2; exit 1
fi
grep -q 'torn or truncated' "$work/serve-corrupt.out" \
  || { echo "validate-requests wrong error on a torn line:" >&2; cat "$work/serve-corrupt.out" >&2; exit 1; }
echo "request provenance: socket → access log → trace → journal → explain: OK"

kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
trap 'rm -rf "$work"' EXIT
echo "qoco-serve kill -9 / rehydrate reproduces the uninterrupted report: OK"

echo "== all CI gates passed =="
