//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Implements just enough for the workspace's benches to compile and run
//! under `cargo bench`: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size` accepted and
//! ignored), [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain wall-clock mean over
//! an adaptively chosen iteration count — no statistics, no reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, &mut f);
        self
    }

    /// Close the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Measure the mean wall-clock time of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        // Measure batches until ~50 ms of samples or 10k iterations.
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < 10_000 {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters.max(1) as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { mean_ns: None };
    f(&mut b);
    match b.mean_ns {
        Some(ns) => println!("bench {label:<48} {:>14.1} ns/iter", ns),
        None => println!("bench {label:<48} (no measurement)"),
    }
}

/// Re-export of `std::hint::black_box` for benches that import it from
/// criterion.
pub use std::hint::black_box;

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce `main` for a bench binary from [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("one", |b| b.iter(|| ()));
        group.finish();
    }
}
