//! Offline stand-in for `rayon` (1.x API subset).
//!
//! The workspace's evaluation engine fans its top-level candidate loop out
//! over contiguous slice chunks and merges the per-chunk results in chunk
//! order. This shim provides exactly that surface — [`ParallelSlice::par_chunks`]
//! followed by `.enumerate().map(f).collect::<Vec<_>>()` plus
//! [`current_num_threads`] — on top of `std::thread::scope`, spawning one OS
//! thread per chunk. `collect` preserves chunk order, which the engine's
//! determinism guarantee relies on.
//!
//! [`current_num_threads`] honours `RAYON_NUM_THREADS` (like real rayon's
//! default pool) and falls back to `std::thread::available_parallelism`.
//! The variable is re-read on every call so tests can vary it per-process
//! without a pool rebuild.

#![forbid(unsafe_code)]

/// The number of threads the (implicit) pool would use: `RAYON_NUM_THREADS`
/// if set to a positive integer, otherwise the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The commonly-glob-imported names; mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::ParallelSlice;
}

/// Parallel operations over slices.
pub mod slice {
    /// Extension trait adding `par_chunks` to slices, as in
    /// `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T: Sync> {
        /// Split the slice into contiguous chunks of at most `chunk_size`
        /// elements, to be processed in parallel. Chunk order is the slice
        /// order.
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk_size must be positive");
            ParChunks {
                slice: self,
                chunk_size,
            }
        }
    }

    /// Parallel iterator over contiguous chunks of a slice.
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        chunk_size: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Pair each chunk with its index (chunk order = slice order).
        pub fn enumerate(self) -> ParEnumChunks<'a, T> {
            ParEnumChunks { chunks: self }
        }

        /// Map each chunk through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            R: Send,
            F: Fn(&'a [T]) -> R + Sync,
        {
            ParMap { chunks: self, f }
        }

        fn chunk_list(&self) -> Vec<&'a [T]> {
            if self.slice.is_empty() {
                return Vec::new();
            }
            self.slice.chunks(self.chunk_size).collect()
        }
    }

    /// `par_chunks(..).enumerate()` adapter.
    pub struct ParEnumChunks<'a, T> {
        chunks: ParChunks<'a, T>,
    }

    impl<'a, T: Sync> ParEnumChunks<'a, T> {
        /// Map each `(chunk_index, chunk)` pair through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParEnumMap<'a, T, F>
        where
            R: Send,
            F: Fn((usize, &'a [T])) -> R + Sync,
        {
            ParEnumMap {
                chunks: self.chunks,
                f,
            }
        }
    }

    /// `par_chunks(..).map(..)` adapter.
    pub struct ParMap<'a, T, F> {
        chunks: ParChunks<'a, T>,
        f: F,
    }

    impl<'a, T, R, F> ParMap<'a, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        /// Execute and gather the per-chunk results in chunk order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let items = self.chunks.chunk_list();
            run_ordered(items, &self.f).into_iter().collect()
        }
    }

    /// `par_chunks(..).enumerate().map(..)` adapter.
    pub struct ParEnumMap<'a, T, F> {
        chunks: ParChunks<'a, T>,
        f: F,
    }

    impl<'a, T, R, F> ParEnumMap<'a, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'a [T])) -> R + Sync,
    {
        /// Execute and gather the per-chunk results in chunk order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let items: Vec<(usize, &'a [T])> =
                self.chunks.chunk_list().into_iter().enumerate().collect();
            run_ordered(items, &self.f).into_iter().collect()
        }
    }

    /// Run `f` over `items` on scoped threads (one per item) and return the
    /// results in input order. A panic in any closure propagates.
    fn run_ordered<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        match items.len() {
            0 => Vec::new(),
            // Run the single chunk inline: no thread spawn, same result.
            1 => items.into_iter().map(&f).collect(),
            _ => std::thread::scope(|scope| {
                let handles: Vec<_> = items
                    .into_iter()
                    .map(|item| {
                        let f = &f;
                        scope.spawn(move || f(item))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("parallel chunk worker panicked"))
                    .collect()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_map_preserves_order() {
        let data: Vec<u64> = (0..100).collect();
        let sums: Vec<u64> = data.par_chunks(7).map(|c| c.iter().sum::<u64>()).collect();
        let expected: Vec<u64> = data.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn enumerate_indexes_chunks_in_slice_order() {
        let data: Vec<u32> = (0..40).collect();
        let got: Vec<(usize, u32)> = data
            .par_chunks(16)
            .enumerate()
            .map(|(i, c)| (i, c[0]))
            .collect();
        assert_eq!(got, vec![(0, 0), (1, 16), (2, 32)]);
    }

    #[test]
    fn empty_slice_yields_no_chunks() {
        let data: Vec<u8> = Vec::new();
        let got: Vec<usize> = data.par_chunks(4).map(|c| c.len()).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
