//! The glob-import surface used by test files:
//! `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::Strategy;
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, proptest};
