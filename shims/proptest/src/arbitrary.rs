//! `any::<T>()` and the [`Arbitrary`] trait.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// The strategy generating any value of `T`; obtain via [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = TestRng::deterministic("ab");
        let strat = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(|b| *b));
        assert!(draws.iter().any(|b| !*b));
    }
}
