//! Deterministic test runner support: config, RNG, and case errors.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a over the name), so every run of
    /// a given property replays the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }
}

/// A failed property case; carried back to the runner via `Err`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_name_seeded_and_stable() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        let mut c = TestRng::deterministic("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        // different names almost surely diverge immediately
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = rng.below(3, 9);
            assert!((3..9).contains(&v));
        }
    }
}
