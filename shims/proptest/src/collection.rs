//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.min + 1 >= self.max_excl {
            self.min
        } else {
            rng.below(self.min as u64, self.max_excl as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`; draws elements until the target size is
/// reached or duplicates make further growth unlikely (bounded retries), so
/// the resulting set may be smaller than requested when the element domain
/// is narrow.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 32 * (target + 1) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_band() {
        let mut rng = TestRng::deterministic("v");
        let strat = vec(0..5u32, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn vec_exact_size() {
        let mut rng = TestRng::deterministic("ve");
        let strat = vec(0..5u32, 12);
        assert_eq!(strat.generate(&mut rng).len(), 12);
    }

    #[test]
    fn btree_set_is_bounded_and_deduplicated() {
        let mut rng = TestRng::deterministic("b");
        let strat = btree_set(0u32..6, 1..4);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty());
            assert!(s.len() < 4);
            assert!(s.iter().all(|x| *x < 6));
        }
    }
}
