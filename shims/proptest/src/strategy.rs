//! The [`Strategy`] trait and its combinators and primitive impls.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// How many draws `prop_filter_map` attempts before giving up on a case.
const FILTER_MAP_RETRIES: usize = 10_000;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree: strategies produce plain
/// values and rejected cases are simply re-drawn, so no shrinking occurs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Transform generated values, re-drawing whenever `f` returns `None`.
    /// `whence` labels the filter in the panic raised if every retry is
    /// rejected.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_MAP_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map exhausted {FILTER_MAP_RETRIES} draws: {}",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Characters used by string-pattern strategies: plain ASCII plus the
/// whitespace, escape and multibyte characters most likely to stress
/// parsers and round-trip codecs.
const CHAR_POOL: &[char] = &[
    'a', 'b', 'c', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '\r', '\\', '#', '"', '\'', ',', ':',
    '|', '-', '_', '.', '(', ')', 'é', 'ß', '雪', '→', '🦀',
];

/// A `&str` used as a strategy stands for "arbitrary text" (the workspace
/// only uses the `".*"` pattern); the regex itself is not interpreted.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(0, 13) as usize;
        (0..len)
            .map(|_| CHAR_POOL[rng.below(0, CHAR_POOL.len() as u64) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t");
        for _ in 0..500 {
            let (a, b) = (0..4usize, 10u32..=12).generate(&mut rng);
            assert!(a < 4);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn map_and_filter_map_compose() {
        let mut rng = TestRng::deterministic("m");
        let even = (0..100u32).prop_filter_map("even only", |v| (v % 2 == 0).then_some(v));
        let doubled = (0..10u32).prop_map(|v| v * 2);
        for _ in 0..200 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn string_pattern_generates_varied_text() {
        let mut rng = TestRng::deterministic("s");
        let strat = ".*";
        let samples: Vec<String> = (0..50).map(|_| strat.generate(&mut rng)).collect();
        assert!(samples.iter().any(|s| s.is_empty()));
        assert!(samples.iter().any(|s| !s.is_ascii()));
    }

    #[test]
    #[should_panic(expected = "prop_filter_map exhausted")]
    fn filter_map_reports_exhaustion() {
        let mut rng = TestRng::deterministic("x");
        let never = (0..4u32).prop_filter_map("impossible", |_| None::<u32>);
        let _ = never.generate(&mut rng);
    }
}
