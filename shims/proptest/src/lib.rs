//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The workspace's property tests need: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, [`prop_assert!`] /
//! [`prop_assert_eq!`], the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_filter_map`, integer-range and tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], `any::<bool>()`, and
//! string strategies from `&str` patterns. All of that is provided here on
//! top of a deterministic SplitMix64 runner seeded from the test name, so
//! failures reproduce exactly. Counterexamples are reported as generated —
//! there is no shrinking.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Assert a condition inside a `proptest!` body, failing the current case
/// (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body, with `Debug` output of both
/// sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\nassertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Define property tests: each `fn name(input in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[allow(unreachable_code)]
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $p = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}
