//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Provides a [`Mutex`] whose `lock()` returns the guard directly (no
//! poisoning `Result`), matching the parking_lot calling convention the
//! workspace uses. Internally this wraps `std::sync::Mutex` and recovers
//! from poisoning, which preserves parking_lot's semantics: a panic while
//! holding the lock does not render it unusable.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with parking_lot's panic-free interface.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
