//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The workspace builds without registry access, so this shim provides the
//! exact surface the qoco crates use: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::random`] for `bool`/`f64`, and
//! [`Rng::random_range`] over half-open and inclusive integer ranges. The
//! generator is SplitMix64: deterministic, fast, and good enough for
//! synthetic-data generation and randomized baselines — not for statistics
//! or cryptography.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generator types.
pub mod rngs {
    /// A deterministic 64-bit PRNG (SplitMix64); stands in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Core entropy source: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 step (Steele, Lea, Flood; public-domain constants).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable via [`Rng::random`].
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges sampleable via [`Rng::random_range`]. The output type is a
/// trait parameter (mirroring rand) so it can be inferred from the call
/// site's expected type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn sample_span<R: RngCore>(rng: &mut R, lo: i128, span: u128) -> i128 {
    debug_assert!(span > 0);
    // Modulo with a 64-bit draw; bias is negligible for the small spans the
    // workspace uses and irrelevant for its deterministic tests.
    lo + (rng.next_u64() as u128 % span) as i128
}

/// Integer types uniformly sampleable within a range; the blanket
/// [`SampleRange`] impls below hang off this, which lets the compiler
/// unify a literal range's element type with the call site's expected
/// output type (as real rand does).
pub trait SampleUniform: Copy {
    /// Convert to the wide intermediate used for span arithmetic.
    fn to_i128(self) -> i128;
    /// Convert back from the wide intermediate.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "empty range in random_range");
        T::from_i128(sample_span(rng, lo, (hi - lo) as u128))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "empty range in random_range");
        T::from_i128(sample_span(rng, lo, (hi - lo + 1) as u128))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(0..7usize);
            assert!(v < 7);
            let w = rng.random_range(3..=5u32);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bools_take_both_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<bool> = (0..64).map(|_| rng.random::<bool>()).collect();
        assert!(draws.iter().any(|b| *b));
        assert!(draws.iter().any(|b| !*b));
    }
}
