//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). The crossbeam calling
//! convention is preserved: the scope closure and every spawned closure
//! receive a `&Scope` argument (crossbeam passes it so nested spawns can
//! borrow the same scope), and `scope` returns a `Result`.
//!
//! One semantic difference: if a spawned thread panics and its handle is
//! never joined, `std::thread::scope` propagates the panic instead of
//! returning `Err`. The workspace immediately `.expect()`s the result, so
//! both behaviours abort the caller identically.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads; mirrors
    /// `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// (crossbeam convention), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let captured = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&captured)),
            }
        }
    }

    /// Handle to a scoped thread; joined implicitly when the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Create a scope whose spawned threads may borrow from the enclosing
    /// environment; all are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn join_returns_value() {
        let r = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 21 * 2);
            h.join().expect("no panic")
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
